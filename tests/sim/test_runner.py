"""Tests for the Monte-Carlo runner and sweep harness."""

import pytest

from repro.sim.runner import MonteCarloRunner, sweep
from repro.utils.errors import ConfigurationError


class TestMonteCarloRunner:
    def test_runs_are_reproducible(self, single_config):
        a = MonteCarloRunner(single_config, n_runs=3).run_all()
        b = MonteCarloRunner(single_config, n_runs=3).run_all()
        assert [r.mean_psnr for r in a] == [r.mean_psnr for r in b]

    def test_runs_are_distinct(self, single_config):
        runs = MonteCarloRunner(single_config, n_runs=4).run_all()
        means = {round(r.mean_psnr, 6) for r in runs}
        assert len(means) > 1

    def test_summary_counts(self, single_config):
        summary = MonteCarloRunner(single_config, n_runs=3).summary()
        assert summary.mean_psnr.n_samples == 3

    def test_invalid_n_runs(self, single_config):
        with pytest.raises(ConfigurationError):
            MonteCarloRunner(single_config, n_runs=0)

    def test_unseeded_config_supported(self, single_config):
        runner = MonteCarloRunner(single_config.with_seed(None), n_runs=2)
        assert len(runner.run_all()) == 2


class TestSweep:
    def test_basic_sweep(self, single_config):
        result = sweep(single_config, "n_channels", [4, 8],
                       ["heuristic1", "heuristic2"], n_runs=2)
        assert result.parameter == "n_channels"
        assert result.values == [4, 8]
        assert len(result.series("heuristic1")) == 2
        assert len(result.summaries["heuristic2"]) == 2

    def test_custom_configure_hook(self, single_config):
        from repro.experiments.scenarios import utilization_to_p01
        result = sweep(
            single_config, "utilization", [0.3, 0.6], ["heuristic1"],
            n_runs=2,
            configure=lambda cfg, eta: cfg.replace(p01=utilization_to_p01(eta)))
        series = result.series("heuristic1")
        # Lower utilisation => more spectrum => better quality.
        assert series[0] > series[1]

    def test_schemes_face_same_randomness(self, single_config):
        # Paired comparison: both schemes see identical seeds, so a scheme
        # compared against itself must produce identical series.
        result = sweep(single_config, "n_channels", [6],
                       ["heuristic1", "heuristic1"], n_runs=2)
        assert result.series("heuristic1") == result.series("heuristic1")

    def test_upper_bound_series(self, interfering_config):
        result = sweep(interfering_config, "n_channels", [4],
                       ["proposed-fast"], n_runs=1)
        ub = result.upper_bound_series("proposed-fast")
        assert len(ub) == 1
        assert ub[0] >= result.series("proposed-fast")[0] - 1e-9
