"""Monte-Carlo replication harness.

Runs a scenario several times with independent (but deterministically
derived) seeds and summarises the runs -- the paper averages 10 runs per
point and reports 95% confidence intervals (Section V).

The harness is fault-tolerant: a replication that raises a
:class:`~repro.utils.errors.ReproError` is retried once with a fresh
deterministically-derived seed, and if the retry also fails the
replication is recorded as a :class:`~repro.sim.metrics.FailedRun`
diagnostic instead of aborting the experiment.  Summaries are computed
over the surviving runs with an explicit ``n_failed`` count.  Parameter
sweeps can additionally checkpoint every completed ``(scheme, sweep
point, run)`` cell to disk (:mod:`repro.sim.checkpoint`) and resume
after an interruption without recomputing finished cells.

Execution is delegated to the plan/executor layer (:mod:`repro.exec`):
the grid of cells is flattened into a deterministic plan and handed to a
serial or multi-process executor (``jobs=N``).  Seeds are derived per
cell from the root seed and results are assembled by cell key, so the
output is bit-identical at every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.logging import get_logger
from repro.obs.metrics import global_registry, metrics_enabled, scoped_registry
from repro.obs.trace import maybe_span
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.config import ScenarioConfig
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import (
    FailedRun,
    MetricsSummary,
    RunMetrics,
    summarize_runs,
)
from repro.store.confighash import config_hash
from repro.store.scenario_store import activate_workspace, built_for
from repro.utils.errors import (
    ConfigurationError,
    ReproError,
    SweepInterrupted,
)
from repro.utils.rng import derive_seed

logger = get_logger(__name__)

#: Attempts per replication: the first try plus one fresh-seed retry.
MAX_ATTEMPTS = 2


def _run_replication(config: ScenarioConfig) -> RunMetrics:
    """Fetch (or build) the scenario invariants and run one engine.

    The store lookup happens *here*, together with engine construction,
    so that under metrics collection both run against the replication's
    private registry -- cache-hit counters ride the obs snapshot back
    from pool workers exactly like every other engine metric.
    """
    return SimulationEngine(config, built=built_for(config)).run()


def execute_run(config: ScenarioConfig, run_index: int
                ) -> Tuple[Optional[RunMetrics], Optional[FailedRun]]:
    """Run one replication with isolation and a single fresh-seed retry.

    Returns ``(metrics, None)`` on success (possibly on the retry) or
    ``(None, FailedRun)`` when every attempt raised a
    :class:`ReproError`.  Programming errors (anything that is not a
    ``ReproError``) propagate unchanged -- retrying those would only
    mask bugs.
    """
    seeds: List[Optional[int]] = []
    last_error: Optional[ReproError] = None
    for attempt in range(MAX_ATTEMPTS):
        seed = derive_seed(config.seed, run_index, attempt)
        seeds.append(seed)
        plan = config.fault_plan
        if plan is not None and hasattr(plan, "begin_run"):
            plan.begin_run(run_index, attempt)
        try:
            with maybe_span("replication", kind="replication", run=run_index,
                            attempt=attempt, seed=seed, scheme=config.scheme):
                seeded = config.with_seed(seed)
                if metrics_enabled():
                    # Record the replication against a private registry so
                    # its snapshot can ride back on the RunMetrics (from a
                    # worker process or in-line) and be merged by the
                    # parent -- totals come out identical at any --jobs N.
                    with scoped_registry() as registry:
                        metrics = _run_replication(seeded)
                    metrics = replace(metrics,
                                      obs_snapshot=registry.snapshot())
                else:
                    metrics = _run_replication(seeded)
            return metrics, None
        except ReproError as exc:
            last_error = exc
            if attempt + 1 < MAX_ATTEMPTS:
                logger.warning(
                    "replication %d attempt %d failed (%s: %s); retrying "
                    "with a fresh derived seed", run_index, attempt,
                    type(exc).__name__, exc)
                from repro.exec.supervisor import apply_backoff

                apply_backoff(config.seed, run_index, attempt + 1,
                              reason="replication-retry")
    logger.error("replication %d lost after %d attempts (%s: %s)",
                 run_index, MAX_ATTEMPTS, type(last_error).__name__,
                 last_error)
    return None, FailedRun(
        run_index=run_index,
        error_type=type(last_error).__name__,
        error=str(last_error),
        attempts=MAX_ATTEMPTS,
        seeds=tuple(seeds),
    )


def _absorb_outcome(outcome) -> None:
    """Fold one executed cell's telemetry into the parent registry.

    Called from the parent-side collection loops only (never in
    workers), mirroring the single-writer checkpointing rule.
    """
    if not metrics_enabled():
        return
    registry = global_registry()
    registry.counter("repro_executor_cells_total").inc()
    registry.counter("repro_executor_busy_seconds_total").inc(
        max(0.0, float(outcome.seconds)))
    snapshot = getattr(outcome.result, "obs_snapshot", None)
    if snapshot:
        registry.absorb(snapshot)


class MonteCarloRunner:
    """Replicated simulation of one scenario.

    Parameters
    ----------
    config:
        The scenario; its ``seed`` is the root from which per-run seeds
        are derived (run ``r`` uses ``SeedSequence([seed, r])``; a
        retried run uses ``SeedSequence([seed, r, attempt])``).
    n_runs:
        Number of independent replications (paper default: 10).
    jobs:
        Worker processes for the replications (``None``/1 = in-process
        serial execution; see :mod:`repro.exec`).  Results are assembled
        by replication index, so any worker count produces bit-identical
        output.
    executor:
        Explicit :class:`~repro.exec.executor.Executor` strategy;
        overrides ``jobs`` when given.
    cell_timeout / deadline:
        Per-replication and whole-campaign wall-clock budgets in
        seconds; either one switches execution to the watchdog
        :class:`~repro.exec.supervisor.SupervisedExecutor`.
    workspace:
        Optional :class:`~repro.store.workspace.FileWorkspace` (or
        directory path); activated as the scenario store's disk cache
        for this process and its pool workers.

    Attributes
    ----------
    failed_runs:
        :class:`FailedRun` diagnostics from the most recent
        :meth:`run_all` / :meth:`summary` call (empty when every
        replication survived).
    """

    def __init__(self, config: ScenarioConfig, *, n_runs: int = 10,
                 jobs: Optional[int] = None,
                 executor: Optional[object] = None,
                 cell_timeout: Optional[float] = None,
                 deadline: Optional[float] = None,
                 workspace: Optional[object] = None) -> None:
        if n_runs < 1:
            raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
        if workspace is not None:
            activate_workspace(workspace)
        self.config = config
        self.n_runs = int(n_runs)
        self.jobs = jobs
        self.cell_timeout = cell_timeout
        self.deadline = deadline
        self._executor = executor
        self.failed_runs: List[FailedRun] = []

    def run_one(self, run_index: int, attempt: int = 0) -> RunMetrics:
        """Execute a single replication without isolation (raises on error)."""
        if not 0 <= run_index < self.n_runs:
            raise ConfigurationError(
                f"run_index must be in [0, {self.n_runs}), got {run_index}")
        seed = derive_seed(self.config.seed, run_index, attempt)
        plan = self.config.fault_plan
        if plan is not None and hasattr(plan, "begin_run"):
            plan.begin_run(run_index, attempt)
        return _run_replication(self.config.with_seed(seed))

    def run_all(self) -> List[RunMetrics]:
        """Execute every replication and return the surviving runs' metrics.

        Each replication is isolated: a :class:`ReproError` triggers one
        retry with a fresh derived seed, and a second failure is recorded
        in :attr:`failed_runs` rather than raised.  Raises
        :class:`ReproError` only when *every* replication failed.
        """
        from repro.exec.executor import make_executor
        from repro.exec.plan import plan_campaign

        logger.info("campaign: %d replications, scheme %s, seed %s, jobs %s",
                    self.n_runs, self.config.scheme, self.config.seed,
                    self.jobs)
        plan = plan_campaign(self.config, self.n_runs)
        executor = self._executor if self._executor is not None \
            else make_executor(self.jobs, cell_timeout=self.cell_timeout,
                               deadline=self.deadline)
        by_index: Dict[int, Union[RunMetrics, FailedRun]] = {}
        for outcome in executor.run(plan.cells):
            _absorb_outcome(outcome)
            by_index[outcome.cell.run_index] = outcome.result
        if len(by_index) < len(plan.cells):
            # The executor drained early under a shutdown signal; a
            # campaign has no checkpoint, so nothing survives -- report
            # the interruption rather than a silently truncated summary.
            raise SweepInterrupted(
                f"campaign interrupted by shutdown signal: "
                f"{len(by_index)}/{len(plan.cells)} replications completed")
        runs: List[RunMetrics] = []
        failures: List[FailedRun] = []
        for run_index in sorted(by_index):
            result = by_index[run_index]
            if isinstance(result, RunMetrics):
                runs.append(result)
            else:
                failures.append(result)
        self.failed_runs = failures
        if not runs:
            raise ReproError(
                f"all {self.n_runs} replications failed; last error: "
                f"{failures[-1].error_type}: {failures[-1].error}")
        return runs

    def summary(self) -> MetricsSummary:
        """Execute every replication and summarise the survivors with CIs.

        The summary's ``n_failed`` reports replications lost after their
        retry; ``n_degraded_slots`` totals the surviving runs' recorded
        degradation events.
        """
        runs = self.run_all()
        return summarize_runs(runs, n_failed=len(self.failed_runs))


@dataclass
class SweepResult:
    """Results of sweeping one scenario parameter across several schemes.

    Attributes
    ----------
    parameter:
        Name of the swept parameter (e.g. ``"n_channels"``).
    values:
        The sweep points, in order.
    summaries:
        ``{scheme: [MetricsSummary per sweep point]}``.
    """

    parameter: str
    values: Sequence[object]
    summaries: Dict[str, List[MetricsSummary]] = field(default_factory=dict)

    def series(self, scheme: str) -> List[float]:
        """Mean-PSNR series of one scheme across the sweep."""
        return [summary.mean_psnr.mean for summary in self.summaries[scheme]]

    def upper_bound_series(self, scheme: str = "proposed") -> List[float]:
        """Eq. (23) upper-bound series (meaningful for the proposed scheme)."""
        return [summary.upper_bound_psnr.mean for summary in self.summaries[scheme]]

    @property
    def n_failed(self) -> int:
        """Total replications lost across every scheme and sweep point."""
        return sum(summary.n_failed
                   for summaries in self.summaries.values()
                   for summary in summaries)


def sweep(base_config: ScenarioConfig, parameter: str, values: Sequence[object],
          schemes: Sequence[str], *, n_runs: int = 10,
          configure: Optional[Callable[[ScenarioConfig, object],
                                       ScenarioConfig]] = None,
          checkpoint_path: Optional[Union[str, Path, SweepCheckpoint]] = None,
          jobs: Optional[int] = None, executor: Optional[object] = None,
          progress: Optional[object] = None,
          cell_timeout: Optional[float] = None,
          deadline: Optional[float] = None,
          workspace: Optional[object] = None,
          run_name: Optional[str] = None) -> SweepResult:
    """Sweep one parameter across several schemes.

    The sweep is flattened into a deterministic plan of ``(scheme, sweep
    point, run)`` cells (:func:`repro.exec.plan.plan_sweep`) and handed
    to an executor strategy (:mod:`repro.exec.executor`).  Per-cell seeds
    are derived from the root seed alone and results are assembled by
    cell key, so every worker count produces bit-identical summaries.

    Parameters
    ----------
    base_config:
        Template scenario.
    parameter:
        Attribute of :class:`ScenarioConfig` to vary (ignored if a custom
        ``configure`` is supplied).
    values:
        Sweep points.
    schemes:
        Allocation schemes to evaluate at every point.
    n_runs:
        Replications per point per scheme.
    configure:
        Optional hook ``(config, value) -> config`` for sweeps that touch
        more than a single attribute (e.g. utilisation sweeps also rebuild
        ``p01``).  Applied during planning, in this process, so it may be
        a lambda even under parallel execution.
    checkpoint_path:
        Optional checkpoint file (a path, or an already-open
        :class:`~repro.sim.checkpoint.SweepCheckpoint` instance for
        tests that inject a faulty writer).  Every completed ``(scheme,
        sweep point, run)`` cell is appended as soon as it arrives;
        rerunning the same sweep with the same path resumes, recomputing
        only the missing cells (at any ``jobs`` value -- the checkpoint
        is executor-agnostic).  All writes happen in this process
        (single-writer), never in workers.  The file fingerprints the
        sweep (parameter, values, schemes, ``n_runs``, root seed) and
        refuses to resume a different one.
    jobs:
        Worker processes (``None``/1 = serial in-process execution;
        ``N > 1`` = a process pool of N workers).
    executor:
        Explicit :class:`~repro.exec.executor.Executor` strategy;
        overrides ``jobs`` when given.
    progress:
        Optional telemetry sink (duck-typed like
        :class:`~repro.exec.progress.ProgressTracker`): ``begin(total,
        cached=...)`` is called once, then ``observe(outcome)`` per
        executed cell.
    cell_timeout / deadline:
        Per-cell and whole-sweep wall-clock budgets in seconds
        (``--cell-timeout`` / ``--deadline``).  Either one switches
        execution to the watchdog
        :class:`~repro.exec.supervisor.SupervisedExecutor`: a cell past
        its deadline is recorded as a ``FailedRun`` with
        ``error_type="CellTimedOut"`` (and checkpointed, so a resume
        does not retry it), while an expired sweep deadline raises
        :class:`~repro.utils.errors.SweepDeadlineExceeded` after
        checkpointing everything that finished.
    workspace:
        Optional :class:`~repro.store.workspace.FileWorkspace` (or
        directory path).  Activated as the scenario store's disk cache
        (pool workers reattach through the exported environment), and
        the sweep registers its scenario hashes and checkpoint there
        under ``run_name`` so ``repro workspace gc`` can protect the
        artifacts a resumable checkpoint still needs.
    run_name:
        Workspace registry name for this sweep (defaults to
        ``"<parameter>-sweep"``); ignored without ``workspace``.

    Notes
    -----
    All schemes at a sweep point share the same root seed, so they face
    identical channel occupancy, sensing noise, and fading -- the paired
    comparison the paper's figures rely on.  Failed replications (after
    their retry) are excluded from each point's summary and counted in
    its ``n_failed``.
    """
    from repro.exec.executor import make_executor
    from repro.exec.plan import plan_sweep
    from repro.exec.supervisor import active_shutdown

    if workspace is not None:
        # Before planning: planning computes scenario hashes, and the
        # workers spawned below discover the disk cache through the
        # environment activate_workspace exports.
        workspace = activate_workspace(workspace)
    plan = plan_sweep(base_config, parameter, values, schemes,
                      n_runs=n_runs, configure=configure)
    checkpoint = None
    if isinstance(checkpoint_path, SweepCheckpoint):
        checkpoint = checkpoint_path
    elif checkpoint_path is not None:
        try:
            # The fault plan is deliberately not part of the checkpoint
            # fingerprint (a fault-injected sweep may be resumed
            # fault-free and vice versa), so hash without it.
            base_hash = config_hash(base_config.replace(fault_plan=None))
        except TypeError:
            # Duck-typed test configs (un-canonicalisable topologies)
            # sweep fine; they just forgo the config-identity guard.
            base_hash = None
        checkpoint = SweepCheckpoint(
            checkpoint_path, parameter=parameter, values=values,
            schemes=schemes, n_runs=n_runs, seed=base_config.seed,
            config_hash=base_hash)
    if workspace is not None:
        refs = sorted({cell.scenario_ref for cell in plan.cells
                       if cell.scenario_ref is not None})
        workspace.register_run(
            run_name or f"{parameter}-sweep",
            parameter=parameter,
            n_cells=len(plan.cells),
            scenario_hashes=refs,
            checkpoint=(None if checkpoint is None else checkpoint.path))

    if executor is None:
        executor = make_executor(jobs, cell_timeout=cell_timeout,
                                 deadline=deadline)

    completed: Dict[str, Union[RunMetrics, FailedRun]] = {}
    pending = []
    for cell in plan.cells:
        cached = checkpoint.get(cell.key) if checkpoint is not None else None
        if cached is not None:
            completed[cell.key] = cached
        else:
            pending.append(cell)

    logger.info("sweep %s: %d cells planned, %d pending, %d from checkpoint",
                parameter, len(plan.cells), len(pending), len(completed))
    if progress is not None and hasattr(progress, "begin"):
        progress.begin(len(pending), cached=len(completed))
    coordinator = active_shutdown()
    if coordinator is not None and checkpoint is not None:
        # On a second (hard-abort) signal the coordinator forces a final
        # checkpoint fsync before exiting, so every recorded cell is
        # durable even then.
        coordinator.add_flusher(checkpoint.sync)
    try:
        for outcome in executor.run(pending):
            # Single-writer checkpointing: results stream back to the
            # parent and only the parent touches the file, as soon as
            # each arrives.
            if checkpoint is not None:
                checkpoint.record(outcome.cell.key, outcome.result)
            _absorb_outcome(outcome)
            completed[outcome.cell.key] = outcome.result
            if progress is not None and hasattr(progress, "observe"):
                progress.observe(outcome)
    finally:
        if coordinator is not None and checkpoint is not None:
            coordinator.remove_flusher(checkpoint.sync)

    # Count distinct keys: a degenerate sweep may list a scheme twice,
    # in which case its cells share keys and completed can never reach
    # len(plan.cells).
    if len(completed) < len({cell.key for cell in plan.cells}):
        # The executor drained early under a shutdown signal.  Completed
        # cells are already on disk; make them durable and report the
        # interruption so the CLI can exit with its documented code.
        if checkpoint is not None:
            checkpoint.sync()
        raise SweepInterrupted(
            f"sweep interrupted by shutdown signal: {len(completed)}/"
            f"{len(plan.cells)} cells completed"
            + ("" if checkpoint is None
               else f"; resume from checkpoint {checkpoint.path}"))
    return _assemble_sweep(plan, completed)


def _assemble_sweep(plan, completed) -> SweepResult:
    """Fold per-cell results into a :class:`SweepResult`, by cell key.

    Assembly order is the plan's deterministic grid order -- never the
    executors' completion order -- which is what makes parallel runs
    bit-identical to serial ones.
    """
    result = SweepResult(parameter=plan.parameter, values=list(plan.values))
    for scheme in plan.schemes:
        result.summaries[scheme] = []
    for point_index, value in enumerate(plan.values):
        for scheme in plan.schemes:
            runs: List[RunMetrics] = []
            failures: List[FailedRun] = []
            for run_index in range(plan.n_runs):
                key = SweepCheckpoint.cell_key(scheme, point_index, run_index)
                cell = completed[key]
                if isinstance(cell, RunMetrics):
                    runs.append(cell)
                else:
                    failures.append(cell)
            if not runs:
                raise ReproError(
                    f"all {plan.n_runs} replications failed for scheme "
                    f"{scheme!r} at {plan.parameter}={value!r}; last error: "
                    f"{failures[-1].error_type}: {failures[-1].error}")
            result.summaries[scheme].append(
                summarize_runs(runs, n_failed=len(failures)))
    return result
