"""Packet-loss probability from the SINR distribution (eq. 8).

Thin functional wrappers over the fading models for call sites that only
need the scalar probabilities and not a stateful link object.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive


def packet_loss_probability(fading, threshold: float) -> float:
    """``P^F = F_X(H)`` -- probability the slot's SINR falls below ``H``.

    Parameters
    ----------
    fading:
        Any fading model exposing ``cdf`` (e.g. :class:`RayleighFading`).
    threshold:
        Decoding SINR threshold ``H`` (linear scale).
    """
    threshold = check_positive(threshold, "threshold", allow_zero=True)
    loss = float(fading.cdf(threshold))
    if not 0.0 <= loss <= 1.0:
        raise ValueError(f"fading model returned invalid CDF value {loss}")
    return loss


def success_probability(fading, threshold: float) -> float:
    """``bar P^F = 1 - F_X(H)`` -- probability the slot decodes."""
    return 1.0 - packet_loss_probability(fading, threshold)


def rayleigh_loss_probabilities(mean_sinrs, threshold: float) -> np.ndarray:
    """Vectorized Rayleigh ``P^F = 1 - exp(-H / mean)`` over many links.

    Batched counterpart of evaluating :class:`~repro.phy.fading.RayleighFading`
    ``.cdf(threshold)`` per link.  Matches the scalar path to within one
    ulp of unity, i.e. ``2^-52`` absolute (numpy's SIMD ``exp`` and
    libm's ``math.exp`` disagree in the last bit on a few percent of
    inputs, and the subtraction from 1.0 keeps that discrepancy as an
    absolute error); the simulation engine's
    bit-exact guarantee is unaffected because per-link loss
    probabilities are static and hoisted -- only analyses and sweeps
    evaluate the CDF in bulk.
    """
    means = np.asarray(mean_sinrs, dtype=float)
    threshold = check_positive(threshold, "threshold", allow_zero=True)
    if means.size and np.any(means <= 0.0):
        raise ConfigurationError(
            f"mean SINRs must be positive, got min {means.min()!r}")
    return 1.0 - np.exp(-threshold / means)


def rayleigh_success_probabilities(mean_sinrs, threshold: float) -> np.ndarray:
    """Vectorized ``bar P^F = exp(-H / mean)`` over many Rayleigh links."""
    return 1.0 - rayleigh_loss_probabilities(mean_sinrs, threshold)
