"""Ablations of the design choices DESIGN.md §6 calls out.

* **A1** probabilistic access (eq. 7) vs deterministic thresholding.
* **A2** cooperative multi-sensor fusion (eqs. 3-4) vs a single
  observation per channel.
* **A3** greedy max-marginal-gain channel allocation (Table III) vs the
  interference-graph colour-partition baseline, for the proposed scheme.
* **A4** dual step size vs convergence speed (Table I).
* **A5** (extension) Markov belief tracking of channel priors across
  slots, with dense and sparse sensing.
"""

import numpy as np

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro.core.dual import DualDecompositionSolver
from repro.experiments.scenarios import interfering_fbs_scenario, single_fbs_scenario
from repro.sim.engine import SimulationEngine
from repro.sim.runner import MonteCarloRunner


def _mean(config):
    return MonteCarloRunner(config, n_runs=BENCH_RUNS).summary()


def run_policy_ablations():
    """A1, A2, A5 on the single-FBS scenario."""
    base = single_fbs_scenario(
        n_gops=BENCH_GOPS, seed=BENCH_SEED, scheme="proposed-fast")
    variants = {
        "paper (eq. 7 + full fusion)": base,
        "A1: hard-threshold access": base.replace(access_policy="threshold"),
        "A2: single-observation fusion": base.replace(
            single_observation_fusion=True),
        "A5: belief tracking": base.replace(belief_tracking=True),
        "A5: belief tracking, sparse sensing": base.replace(
            belief_tracking=True, single_observation_fusion=True),
    }
    return {name: _mean(config) for name, config in variants.items()}


def test_bench_access_and_fusion_ablations(benchmark):
    results = benchmark.pedantic(run_policy_ablations, rounds=1, iterations=1)
    lines = [f"{name:38s} mean PSNR {summary.mean_psnr.mean:6.2f} dB   "
             f"collision rate {summary.mean_collision_rate.mean:.3f}"
             for name, summary in results.items()]
    report("Ablations A1/A2/A5 (single FBS, proposed scheme)", "\n".join(lines))

    paper = results["paper (eq. 7 + full fusion)"]
    threshold = results["A1: hard-threshold access"]
    single_obs = results["A2: single-observation fusion"]
    sparse = results["A5: belief tracking, sparse sensing"]
    # A1: deterministic thresholding wastes most of the collision budget
    # and costs several dB.
    assert paper.mean_psnr.mean - threshold.mean_psnr.mean > 1.0
    assert threshold.mean_collision_rate.mean < 0.5 * paper.mean_collision_rate.mean
    # A2: cooperative fusion is worth a measurable amount of quality.
    assert paper.mean_psnr.mean >= single_obs.mean_psnr.mean - 0.1
    # A5: under sparse sensing, carrying beliefs across slots recovers
    # part of the cooperative-fusion loss.
    assert sparse.mean_psnr.mean >= single_obs.mean_psnr.mean - 0.3
    # Every variant still honours the collision cap.
    for summary in results.values():
        assert summary.mean_collision_rate.mean <= 0.2 + 0.05


def run_channel_allocation_ablation():
    """A3: greedy (Table III) vs colour-partition for the proposed scheme.

    The colour-partition result is obtained by running the heuristic
    engine path with the proposed time-share allocator: we simulate
    'heuristic1' slots to get the colour-partition channel split, then
    re-solve each slot problem with the proposed allocator.
    """
    from repro.core.allocator import get_allocator
    config = interfering_fbs_scenario(
        n_gops=BENCH_GOPS, seed=BENCH_SEED, scheme="proposed-fast")
    greedy_mean = _mean(config).mean_psnr.mean

    # Colour-partition variant: per-slot objective with the proposed
    # time-share allocator on the colour-partition channel split.
    engine = SimulationEngine(config.with_scheme("heuristic1"), record_slots=True)
    proposed = get_allocator("proposed-fast")
    greedy_engine = SimulationEngine(config, record_slots=True)
    objective_color = 0.0
    objective_greedy = 0.0
    for _ in range(config.n_slots):
        record = engine.step()
        objective_color += proposed.allocate(record.problem).objective
        objective_greedy += greedy_engine.step().allocation.objective
    return greedy_mean, objective_greedy, objective_color


def test_bench_channel_allocation_ablation(benchmark):
    greedy_mean, obj_greedy, obj_color = benchmark.pedantic(
        run_channel_allocation_ablation, rounds=1, iterations=1)
    report(
        "Ablation A3 (interfering FBSs): Table III greedy vs colour-partition",
        f"proposed w/ greedy allocation : mean PSNR {greedy_mean:6.2f} dB, "
        f"summed slot objective {obj_greedy:.4f}\n"
        f"proposed w/ colour partition  : summed slot objective {obj_color:.4f}")
    # The greedy channel allocation must extract at least as much
    # objective as the video-agnostic colour partition.
    assert obj_greedy >= obj_color - 1e-6


def run_step_size_sweep():
    """A4: Table I convergence vs step size on one representative slot.

    Sweeps the step size with the library's decaying schedule, plus one
    paper-literal configuration: the largest step with a strictly fixed
    step size (``decay_after`` above the budget), which exhibits the
    classic subgradient limit cycle.
    """
    engine = SimulationEngine(single_fbs_scenario(seed=BENCH_SEED),
                              record_slots=True)
    problem = engine.step().problem
    rows = []
    for label, step_size, decay_after in (
            ("0.002", 0.002, 400),
            ("0.01", 0.01, 400),
            ("0.05", 0.05, 400),
            ("0.2", 0.2, 400),
            ("0.2 fixed (paper-literal)", 0.2, 10**6)):
        solver = DualDecompositionSolver(step_size=step_size,
                                         decay_after=decay_after,
                                         max_iterations=20000)
        solution = solver.solve(problem)
        rows.append((label, solution.iterations, solution.converged,
                     solution.allocation.objective))
    return rows


def test_bench_dual_step_size(benchmark):
    rows = benchmark.pedantic(run_step_size_sweep, rounds=1, iterations=1)
    lines = [f"s={label:<26} iterations={iters:<6} converged={conv}  "
             f"objective={obj:.6f}" for label, iters, conv, obj in rows]
    report("Ablation A4: dual step size vs convergence (Table I)", "\n".join(lines))
    objectives = [obj for *_rest, obj in rows]
    # Every configuration reaches (numerically) the same optimum thanks
    # to the primal-recovery step...
    assert max(objectives) - min(objectives) < 1e-3
    # ...and among small-step runs that satisfy the Table I stopping rule,
    # smaller steps take more iterations.
    converged = [(label, iters) for label, iters, conv, _obj in rows[:3] if conv]
    assert len(converged) >= 2
    assert converged[0][1] > converged[-1][1]
    # An over-large *fixed* step overshoots and limit-cycles: the Table I
    # stopping criterion never fires within the budget -- the failure mode
    # the paper's "sufficiently small positive step size" phrasing guards
    # against.  The library's decaying schedule rescues the same step.
    fixed_label, _iters, fixed_converged, _obj = rows[-1]
    assert "fixed" in fixed_label and fixed_converged is False
    assert rows[-2][2] is True
