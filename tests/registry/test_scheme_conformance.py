"""Cross-scheme conformance battery.

Every scheme in the registry -- built-in or third-party -- must pass
this suite *by registration alone*: the tests parametrize over
``scheme_registry().names()``, so registering a new scheme is all it
takes to have it checked for allocation feasibility, the collision
constraint, seeded determinism, picklability through the execution
plan, fallback-chain compatibility, and jobs-1-vs-2 / checkpoint-resume
byte-identity.
"""

import json

import pytest

from repro.core.problem import check_feasible
from repro.exec.plan import ensure_picklable, plan_campaign
from repro.experiments.results_io import sweep_to_dict
from repro.experiments.scenarios import interfering_fbs_scenario
from repro.net.interference import is_valid_allocation
from repro.registry import scheme_registry
from repro.sim.engine import SimulationEngine
from repro.sim.fallback import fallback_chain_for
from repro.sim.runner import sweep

from tests.conftest import make_problem
from tests.sim.test_seed_stability import compute_fingerprint

ALL_SCHEMES = scheme_registry().names()

#: Slack for the collision-constraint check: the access policy enforces
#: (1 - P_A) P_D <= gamma exactly; the test tolerance only absorbs
#: float noise.
_TOL = 1e-9


def _conformance_config(scheme, **overrides):
    """The battery's reference scenario: interfering, one GOP."""
    params = dict(n_gops=1, n_channels=4, seed=20260806, scheme=scheme)
    params.update(overrides)
    return interfering_fbs_scenario(**params)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestSchemeConformance:
    def test_allocations_feasible_and_collision_safe(self, scheme):
        """Every slot's output respects power/channel budgets, the
        interference graph, and the primary-protection constraint."""
        config = _conformance_config(scheme)
        engine = SimulationEngine(config, record_slots=True)
        for _ in range(config.n_slots):
            engine.step()
        graph = config.topology.interference_graph
        assert engine.records, "engine recorded no slots"
        for record in engine.records:
            # Time-share feasibility (raises on violation).
            check_feasible(record.problem, record.allocation)
            # Channel budget: only channels the access policy opened.
            available = set(record.access.available_channels.tolist())
            for fbs_id, channels in record.channel_allocation.items():
                assert set(channels) <= available, (
                    f"slot {record.slot}: FBS {fbs_id} uses channels "
                    f"outside A(t)")
            # Interference constraint: adjacent FBSs never share.
            assert is_valid_allocation(graph, record.channel_allocation)
            # Collision constraint (1 - P_A) P_D <= gamma per channel.
            for m in range(config.n_channels):
                collision = ((1.0 - record.access.posteriors[m])
                             * record.access.access_probabilities[m])
                assert collision <= config.gamma + _TOL, (
                    f"slot {record.slot}: channel {m} violates the "
                    f"collision cap ({collision} > {config.gamma})")

    def test_deterministic_under_fixed_seed(self, scheme):
        """Two runs from one seed produce identical slot trajectories."""
        first, _ = compute_fingerprint(_conformance_config(scheme))
        second, _ = compute_fingerprint(_conformance_config(scheme))
        assert first == second

    def test_picklable_through_exec_plan(self, scheme):
        """Campaign cells for the scheme survive the pickling gate that
        guards hand-off to worker processes."""
        plan = plan_campaign(_conformance_config(scheme), 2)
        ensure_picklable(plan.cells)

    def test_fallback_chain_compatible(self, scheme):
        """The scheme composes with the degradation chain: injected
        non-convergence degrades to a fallback-eligible scheme (or, for
        a fallback-eligible primary, the single-link chain solves)."""
        info = scheme_registry().get(scheme)
        chain = fallback_chain_for(scheme, info.create())
        problem = make_problem(n_users=4, n_fbss=2, g=2.0, seed=3)
        if len(chain.allocators) > 1:
            allocation, events = chain.allocate(
                problem, slot=0, inject_nonconvergence=True)
            assert events[0].cause == "injected-nonconvergence"
            assert events[0].allocator == scheme
            assert events[0].fallback == chain.allocators[1][0]
        else:
            # Fallback-eligible primaries terminate their own chain.
            assert info.fallback_eligible
            allocation, events = chain.allocate(problem, slot=0)
            assert events == []
        check_feasible(problem, allocation)

    def test_jobs_and_checkpoint_resume_byte_identity(self, scheme,
                                                      tmp_path):
        """--jobs 1 and --jobs 2 agree byte-for-byte, and a truncated
        checkpoint resumes to the same bytes."""
        config = _conformance_config(scheme, deadline_slots=5)
        args = ("n_channels", [3, 4], [scheme])

        serial_ckpt = tmp_path / "serial.ckpt"
        serial = sweep(config, *args, n_runs=2, jobs=1,
                       checkpoint_path=serial_ckpt)
        reference = json.dumps(sweep_to_dict(serial), sort_keys=True)

        parallel = sweep(config, *args, n_runs=2, jobs=2,
                         checkpoint_path=tmp_path / "parallel.ckpt")
        assert json.dumps(sweep_to_dict(parallel),
                          sort_keys=True) == reference

        # Truncate the serial checkpoint to its header plus one cell,
        # then finish the remainder at --jobs 2.
        lines = serial_ckpt.read_text().splitlines(keepends=True)
        assert len(lines) >= 3
        (tmp_path / "partial.ckpt").write_text("".join(lines[:2]))
        resumed = sweep(config, *args, n_runs=2, jobs=2,
                        checkpoint_path=tmp_path / "partial.ckpt")
        assert json.dumps(sweep_to_dict(resumed),
                          sort_keys=True) == reference


def test_battery_covers_graph_coloring():
    """The acceptance criterion: graph-coloring is registered and hence
    covered by every test above."""
    assert "graph-coloring" in ALL_SCHEMES
    assert len(ALL_SCHEMES) >= 5
