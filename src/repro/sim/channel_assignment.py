"""Baseline channel assignment for the heuristic schemes.

The paper's heuristics define how *time* is shared but not how licensed
channels are split among interfering FBSs -- in the non-interfering case
there is nothing to split (every FBS uses all available channels).  For a
fair comparison in the interfering case we give the heuristics a sensible
conflict-free assignment that does not use the proposed objective:

1. Colour the interference graph (greedy colouring); FBSs of one colour
   class are mutually non-adjacent and may reuse channels freely.
2. Deal the available channels cyclically across colour classes, ordered
   by posterior so no class is systematically starved of good channels.

Every FBS in the class receiving channel ``m`` gets ``m`` -- maximal
spatial reuse without conflicts, and no dependence on the video state.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import networkx as nx

from repro.core.coloring import interference_coloring
from repro.utils.errors import ConfigurationError


def color_partition_allocation(graph: nx.Graph, fbs_ids: Sequence[int],
                               available_channels: Sequence[int],
                               posteriors: Dict[int, float]) -> Dict[int, Set[int]]:
    """Conflict-free channel assignment by interference-graph colouring.

    Parameters
    ----------
    graph:
        Interference graph over (at least) ``fbs_ids``.
    fbs_ids:
        FBSs requiring channels.
    available_channels:
        The access set ``A(t)``.
    posteriors:
        ``{channel: P^A_m}``; channels are dealt best-first so the classes
        receive comparable quality.

    Returns
    -------
    dict
        ``{fbs_id: set of channels}``; adjacent FBSs never share one.
    """
    missing = [i for i in fbs_ids if i not in graph]
    if missing:
        raise ConfigurationError(
            f"FBS ids {missing} are not vertices of the interference graph")
    if not fbs_ids:
        return {}
    coloring = interference_coloring(graph, fbs_ids,
                                     strategy="largest_first")
    n_colors = max(coloring.values()) + 1 if coloring else 1
    classes: List[List[int]] = [[] for _ in range(n_colors)]
    for fbs_id, color in coloring.items():
        classes[color].append(fbs_id)

    allocation: Dict[int, Set[int]] = {i: set() for i in fbs_ids}
    ordered = sorted(available_channels,
                     key=lambda m: (-posteriors.get(m, 0.0), m))
    for position, channel in enumerate(ordered):
        for fbs_id in classes[position % n_colors]:
            allocation[fbs_id].add(channel)
    return allocation


def expected_channels_of(allocation: Dict[int, Set[int]],
                         posteriors: Dict[int, float]) -> Dict[int, float]:
    """``{fbs_id: G_i}`` implied by an assignment and the posteriors."""
    return {fbs_id: sum(posteriors[m] for m in channels)
            for fbs_id, channels in allocation.items()}
