"""Library of MGS-encoded test sequences.

The paper streams three standard CIF (352x288) sequences, one per CR user
in the single-FBS scenario: *Bus*, *Mobile*, and *Harbor*, encoded with
the JVSM 9.13 H.264/SVC reference codec at GOP size 16 (Section V).

JVSM itself is not reproducible offline, but the optimisation consumes the
encoder output only through the linear rate-distortion model of eq. (9).
The constants below are representative of published MGS measurements for
these sequences (Wien et al., the paper's reference [5]): *Mobile* is the
hardest to encode (lowest base quality), *Bus* gains quality fastest with
rate, and *Harbor* sits in between.  Each encoding also has a finite MGS
enhancement rate (``max_rate_mbps``): a GOP carries only that many
enhancement bits, so a stream *saturates* once they are all delivered --
the physical mechanism that penalises winner-take-all scheduling.
Relative ordering -- which is all the reproduced figures depend on -- is
therefore preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.errors import ConfigurationError
from repro.video.rd_model import MgsRateDistortion


@dataclass(frozen=True)
class VideoSequence:
    """An MGS-encoded video sequence.

    Attributes
    ----------
    name:
        Sequence name (e.g. ``"bus"``).
    resolution:
        ``(width, height)`` in pixels.
    frame_rate:
        Frames per second.
    gop_size:
        Group-of-pictures size in frames (16 in the paper's evaluation).
    rd:
        The sequence's MGS rate-distortion curve.
    """

    name: str
    resolution: Tuple[int, int]
    frame_rate: float
    gop_size: int
    rd: MgsRateDistortion

    def __post_init__(self) -> None:
        if self.gop_size <= 0:
            raise ConfigurationError(f"gop_size must be positive, got {self.gop_size}")
        if self.frame_rate <= 0:
            raise ConfigurationError(f"frame_rate must be positive, got {self.frame_rate}")
        width, height = self.resolution
        if width <= 0 or height <= 0:
            raise ConfigurationError(f"resolution must be positive, got {self.resolution}")

    @property
    def gop_duration_s(self) -> float:
        """Wall-clock duration of one GOP."""
        return self.gop_size / self.frame_rate

    @property
    def base_psnr_db(self) -> float:
        """PSNR with only the base layer received (``alpha``)."""
        return self.rd.alpha_db


_CIF = (352, 288)

#: Representative MGS rate-distortion constants for the paper's three CIF
#: sequences (see module docstring for provenance).  alpha is the
#: base-layer Y-PSNR; beta the enhancement slope in dB/Mbps.
SEQUENCE_LIBRARY: Dict[str, VideoSequence] = {
    "bus": VideoSequence(
        name="bus", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=29.0, beta_db_per_mbps=32.0, max_rate_mbps=0.42),
    ),
    "mobile": VideoSequence(
        name="mobile", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=26.5, beta_db_per_mbps=28.0, max_rate_mbps=0.38),
    ),
    "harbor": VideoSequence(
        name="harbor", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=28.0, beta_db_per_mbps=30.0, max_rate_mbps=0.40),
    ),
    # Additional CIF sequences commonly used in the SVC literature, for
    # larger scenarios (interfering FBSs stream three videos per cell).
    "foreman": VideoSequence(
        name="foreman", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=30.5, beta_db_per_mbps=26.0, max_rate_mbps=0.46),
    ),
    "football": VideoSequence(
        name="football", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=27.5, beta_db_per_mbps=29.0, max_rate_mbps=0.44),
    ),
    "crew": VideoSequence(
        name="crew", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=29.5, beta_db_per_mbps=27.0, max_rate_mbps=0.45),
    ),
}


def get_sequence(name: str) -> VideoSequence:
    """Look up a sequence by (case-insensitive) name.

    Raises
    ------
    ConfigurationError
        If the sequence is not in the library; the message lists the
        available names.
    """
    key = name.lower()
    if key not in SEQUENCE_LIBRARY:
        available = ", ".join(sorted(SEQUENCE_LIBRARY))
        raise ConfigurationError(f"unknown sequence {name!r}; available: {available}")
    return SEQUENCE_LIBRARY[key]
