"""Tests for sensor-to-channel assignment."""

import pytest

from repro.sensing.assignment import (
    assign_sensors_random,
    assign_sensors_round_robin,
    coverage_counts,
)
from repro.utils.errors import ConfigurationError


class TestRoundRobin:
    def test_cycles_through_channels(self):
        assignment = assign_sensors_round_robin([10, 11, 12, 13], 3)
        assert assignment == {10: 0, 11: 1, 12: 2, 13: 0}

    def test_offset_rotates(self):
        base = assign_sensors_round_robin([1, 2, 3], 4, offset=0)
        shifted = assign_sensors_round_robin([1, 2, 3], 4, offset=1)
        for user in (1, 2, 3):
            assert shifted[user] == (base[user] + 1) % 4

    def test_every_user_visits_every_channel_over_m_slots(self):
        users = [0, 1]
        n_channels = 5
        visited = {u: set() for u in users}
        for slot in range(n_channels):
            for user, channel in assign_sensors_round_robin(
                    users, n_channels, offset=slot).items():
                visited[user].add(channel)
        assert all(len(channels) == n_channels for channels in visited.values())

    def test_balanced_coverage(self):
        assignment = assign_sensors_round_robin(list(range(8)), 4)
        counts = coverage_counts(assignment, 4)
        assert counts.tolist() == [2, 2, 2, 2]

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            assign_sensors_round_robin([1], 0)
        with pytest.raises(ConfigurationError):
            assign_sensors_round_robin([1], 3, offset=-1)

    def test_empty_users_ok(self):
        assert assign_sensors_round_robin([], 3) == {}


class TestRandomAssignment:
    def test_deterministic_with_seed(self):
        a = assign_sensors_random([1, 2, 3], 5, rng=7)
        b = assign_sensors_random([1, 2, 3], 5, rng=7)
        assert a == b

    def test_channels_in_range(self):
        assignment = assign_sensors_random(list(range(100)), 6, rng=0)
        assert all(0 <= c < 6 for c in assignment.values())

    def test_invalid_channel_count(self):
        with pytest.raises(ConfigurationError):
            assign_sensors_random([1], -1)


class TestCoverageCounts:
    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ConfigurationError):
            coverage_counts({1: 5}, 3)
