"""Exporters: Prometheus text, manifests, fingerprints, provenance."""

import io

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.results_io import read_provenance, save_results
from repro.experiments.scenarios import (
    interfering_fbs_scenario,
    single_fbs_scenario,
)
from repro.obs.export import (
    config_fingerprint,
    prometheus_text,
    read_manifest,
    result_provenance,
    read_metrics_snapshot,
    run_manifest,
    write_manifest,
    write_metrics,
    write_metrics_snapshot,
)
from repro.obs.metrics import MetricsRegistry


class TestPrometheusText:
    def test_counters_gauges_and_cumulative_histogram(self):
        registry = MetricsRegistry()
        registry.counter("repro_slots_total").inc(20)
        registry.counter("repro_access_decisions_total", decision="deny").inc(3)
        registry.gauge("repro_executor_wall_seconds").set(1.5)
        histogram = registry.histogram("repro_solver_iterations",
                                       buckets=(10.0, 100.0))
        for value in (5, 50, 500):
            histogram.observe(value)
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert "# TYPE repro_slots_total counter" in lines
        assert "repro_slots_total 20" in lines
        assert 'repro_access_decisions_total{decision="deny"} 3' in lines
        assert "# TYPE repro_executor_wall_seconds gauge" in lines
        assert "repro_executor_wall_seconds 1.5" in lines
        # Buckets render cumulatively, +Inf equals the total count.
        assert 'repro_solver_iterations_bucket{le="10"} 1' in lines
        assert 'repro_solver_iterations_bucket{le="100"} 2' in lines
        assert 'repro_solver_iterations_bucket{le="+Inf"} 3' in lines
        assert "repro_solver_iterations_sum 555" in lines
        assert "repro_solver_iterations_count 3" in lines

    def test_identical_registries_render_identically(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b").inc(1)
            registry.counter("a").inc(2)
            return registry

        assert prometheus_text(build()) == prometheus_text(build())

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_metrics_to_path_and_stream(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_slots_total").inc(1)
        path = tmp_path / "m.prom"
        write_metrics(str(path), registry)
        stream = io.StringIO()
        write_metrics(stream, registry)
        assert path.read_text() == stream.getvalue()
        assert path.read_text() == prometheus_text(registry)


class TestConfigFingerprint:
    def test_stable_across_equal_configs(self):
        a = single_fbs_scenario(seed=7)
        b = single_fbs_scenario(seed=7)
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_sensitive_to_seed_and_scenario(self):
        base = single_fbs_scenario(seed=7)
        assert config_fingerprint(base) != config_fingerprint(
            single_fbs_scenario(seed=8))
        assert config_fingerprint(base) != config_fingerprint(
            base.replace(n_channels=base.n_channels + 2))
        assert config_fingerprint(base) != config_fingerprint(
            interfering_fbs_scenario(seed=7))


class TestManifest:
    def test_round_trip(self, tmp_path):
        config = single_fbs_scenario(seed=7)
        manifest = run_manifest(command="fig4b", config=config, seed=7,
                                extra={"jobs": 2})
        path = tmp_path / "run.manifest.json"
        write_manifest(str(path), manifest)
        loaded = read_manifest(str(path))
        assert loaded == manifest
        assert loaded["command"] == "fig4b"
        assert loaded["seed"] == 7
        assert loaded["jobs"] == 2
        assert loaded["config_fingerprint"] == config_fingerprint(config)
        assert loaded["backend"] in ("batched", "scalar")
        assert isinstance(loaded["wall_clock"], float)

    def test_config_optional(self):
        manifest = run_manifest(command="simulate")
        assert manifest["config_fingerprint"] is None
        assert manifest["seed"] is None


class TestManifestAtomicity:
    """``write_manifest`` must never leave a torn sidecar: either the
    previous manifest survives intact or the new one is complete."""

    def test_crash_before_replace_keeps_previous_manifest(self, tmp_path,
                                                          monkeypatch):
        import os

        path = tmp_path / "run.manifest.json"
        write_manifest(str(path), {"command": "fig3", "attempt": 1})
        good = path.read_text()

        def interrupted(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(os, "replace", interrupted)
        with pytest.raises(KeyboardInterrupt):
            write_manifest(str(path), {"command": "fig3", "attempt": 2})
        assert path.read_text() == good
        assert read_manifest(str(path))["attempt"] == 1

    def test_no_temp_debris_after_failure(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "run.manifest.json"

        def interrupted(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", interrupted)
        with pytest.raises(OSError):
            write_manifest(str(path), {"command": "fig3"})
        assert list(tmp_path.iterdir()) == []

    def test_disk_full_fails_loudly_and_keeps_previous(self, tmp_path):
        from repro.testing.faults import simulated_disk_full

        path = tmp_path / "run.manifest.json"
        write_manifest(str(path), {"command": "fig3", "attempt": 1})
        good = path.read_text()
        with simulated_disk_full():
            with pytest.raises(OSError):
                write_manifest(str(path), {"command": "fig3", "attempt": 2})
        assert path.read_text() == good
        assert [p.name for p in tmp_path.iterdir()] == ["run.manifest.json"]

    def test_overwrite_is_complete(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        write_manifest(str(path), {"command": "fig3", "attempt": 1})
        write_manifest(str(path), {"command": "fig3", "attempt": 2})
        assert read_manifest(str(path))["attempt"] == 2
        assert [p.name for p in tmp_path.iterdir()] == ["run.manifest.json"]


class TestResultProvenance:
    def test_triple_is_consistent(self):
        provenance = result_provenance(seed=11)
        assert provenance["seed"] == 11
        assert provenance["acceleration"] == (
            provenance["backend"] == "batched")

    def test_saved_results_carry_provenance_header(self, tmp_path):
        rows = run_fig3(n_runs=1, n_gops=1, schemes=("heuristic1",))
        path = tmp_path / "fig3.json"
        save_results(rows, path, provenance=result_provenance(seed=7))
        header = read_provenance(path)
        assert header["seed"] == 7
        assert header["backend"] in ("batched", "scalar")

    def test_save_without_provenance_still_records_backend(self, tmp_path):
        rows = run_fig3(n_runs=1, n_gops=1, schemes=("heuristic1",))
        path = tmp_path / "fig3.json"
        save_results(rows, path)
        header = read_provenance(path)
        assert header["seed"] is None
        assert "backend" in header and "acceleration" in header


class TestMetricsSnapshot:
    """JSON snapshots are the cross-process metrics hand-off: a job
    writes one at shutdown, the service absorbs it losslessly."""

    def populated_registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_cells_total", status="ok").inc(3)
        registry.gauge("repro_inflight").set(2)
        registry.histogram("repro_cell_seconds",
                           buckets=(0.5, 1.0)).observe(0.7)
        return registry

    def test_round_trip_absorbs_losslessly(self, tmp_path):
        source = self.populated_registry()
        path = tmp_path / "m.json"
        write_metrics_snapshot(path, source)
        target = MetricsRegistry()
        target.absorb(read_metrics_snapshot(path))
        assert prometheus_text(target) == prometheus_text(source)

    def test_absorbing_twice_doubles_counters(self, tmp_path):
        path = tmp_path / "m.json"
        write_metrics_snapshot(path, self.populated_registry())
        target = MetricsRegistry()
        target.absorb(read_metrics_snapshot(path))
        target.absorb(read_metrics_snapshot(path))
        assert target.counters()['repro_cells_total{status="ok"}'] == 6

    def test_obs_shutdown_picks_format_by_extension(self, tmp_path):
        import json as jsonlib

        from repro import obs
        for name, is_json in (("dump.json", True), ("dump.prom", False)):
            path = tmp_path / name
            obs.configure(metrics_path=str(path))
            obs.global_registry().counter("repro_demo_total").inc()
            obs.shutdown()
            text = path.read_text()
            if is_json:
                assert jsonlib.loads(text)["counters"][
                    "repro_demo_total"] == 1
            else:
                assert "# TYPE repro_demo_total counter" in text
