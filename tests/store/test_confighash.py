"""Stability and sensitivity of the deterministic config hashes.

The scenario store caches by content identity, so these tests pin the
two promises of :mod:`repro.store.confighash`: the same config hashes
identically everywhere (numpy or builtin scalars, any dict ordering,
any process), and any physical parameter change changes the hash.
"""

import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.experiments.scenarios import single_fbs_scenario
from repro.store.confighash import (
    SCENARIO_BUILD_FIELDS,
    canonical_json,
    config_hash,
    hash_value,
    scenario_hash,
)


class TestCanonicalValues:
    def test_numpy_scalars_hash_like_builtins(self):
        assert hash_value(np.int64(8)) == hash_value(8)
        assert hash_value(np.int32(8)) == hash_value(8)
        assert hash_value(np.float64(0.35)) == hash_value(0.35)
        assert hash_value(np.bool_(True)) == hash_value(True)

    def test_numpy_array_is_dtype_and_shape_sensitive(self):
        floats = np.array([1.0, 2.0, 3.0])
        assert hash_value(floats) == hash_value(np.array([1.0, 2.0, 3.0]))
        assert hash_value(floats) != hash_value(floats.astype(np.float32))
        assert hash_value(floats) != hash_value(floats.reshape(3, 1))
        # An array is not its list twin: dtype/shape are part of identity.
        assert hash_value(floats) != hash_value([1.0, 2.0, 3.0])

    def test_dict_key_order_is_canonicalised_away(self):
        assert (hash_value({"a": 1, "b": 2, "c": 3})
                == hash_value({"c": 3, "b": 2, "a": 1}))
        # ...but key *type* stays significant.
        assert hash_value({1: "x"}) != hash_value({"1": "x"})

    def test_set_order_is_canonicalised_away(self):
        assert hash_value({3, 1, 2}) == hash_value({2, 3, 1})

    def test_negative_zero_distinct_from_zero(self):
        assert hash_value(-0.0) != hash_value(0.0)

    def test_subnormal_floats_are_exact(self):
        tiny = 5e-324  # smallest positive subnormal double
        assert hash_value(tiny) == hash_value(5e-324)
        assert hash_value(tiny) != hash_value(0.0)
        assert hash_value(tiny) != hash_value(2 * tiny)

    def test_float_canonical_form_is_hex(self):
        assert (0.1).hex() in canonical_json(0.1)

    def test_uncanonicalisable_value_raises(self):
        with pytest.raises(TypeError):
            hash_value(lambda: None)
        with pytest.raises(TypeError):
            hash_value(object())


class TestConfigHashes:
    def test_equal_configs_hash_equal(self):
        a = single_fbs_scenario(n_gops=1, seed=7)
        b = single_fbs_scenario(n_gops=1, seed=7)
        assert config_hash(a) == config_hash(b)
        assert scenario_hash(a) == scenario_hash(b)

    def test_every_build_field_changes_scenario_hash(self):
        base = single_fbs_scenario(n_gops=1, seed=7)
        reference = scenario_hash(base)
        changed = {
            "n_channels": base.n_channels + 2,
            "p01": base.p01 + 0.05,
            "p10": base.p10 + 0.05,
            "channel_utilizations": (0.5,) * base.n_channels,
            "common_bandwidth_mbps": base.common_bandwidth_mbps + 0.1,
            "licensed_bandwidth_mbps": base.licensed_bandwidth_mbps + 0.1,
            "deadline_slots": base.deadline_slots + 1,
            "generator": "single",
            "generator_params": (("n_channels", base.n_channels),),
        }
        assert set(changed) == set(SCENARIO_BUILD_FIELDS)
        for field, value in changed.items():
            variant = base.replace(**{field: value})
            assert scenario_hash(variant) != reference, field
            assert config_hash(variant) != config_hash(base), field

    def test_scheme_and_seed_share_the_scenario_hash(self):
        base = single_fbs_scenario(n_gops=1, seed=7)
        for variant in (base.with_scheme("heuristic1"), base.with_seed(99),
                        base.replace(n_gops=4)):
            assert scenario_hash(variant) == scenario_hash(base)
            assert config_hash(variant) != config_hash(base)

    def test_numpy_sweep_value_hashes_like_builtin(self):
        base = single_fbs_scenario(n_gops=1, seed=7)
        assert (scenario_hash(base.replace(n_channels=np.int64(10)))
                == scenario_hash(base.replace(n_channels=10)))
        assert (scenario_hash(base.replace(p01=np.float64(0.35)))
                == scenario_hash(base.replace(p01=0.35)))

    def test_fault_plan_presence_only_affects_config_hash(self):
        base = single_fbs_scenario(n_gops=1, seed=7)
        with_plan = base.replace(fault_plan=object())
        # The plan object itself has no content identity; only its
        # presence is recorded, and the build identity ignores it.
        assert config_hash(with_plan) != config_hash(base)
        assert scenario_hash(with_plan) == scenario_hash(base)

    def test_hashes_are_stable_across_processes(self):
        parent_scenario = scenario_hash(single_fbs_scenario(n_gops=1, seed=7))
        parent_config = config_hash(single_fbs_scenario(n_gops=1, seed=7))
        script = textwrap.dedent("""
            from repro.experiments.scenarios import single_fbs_scenario
            from repro.store.confighash import config_hash, scenario_hash
            config = single_fbs_scenario(n_gops=1, seed=7)
            print(scenario_hash(config))
            print(config_hash(config))
        """)
        output = subprocess.run(
            [sys.executable, "-c", script], check=True, text=True,
            capture_output=True).stdout.split()
        assert output == [parent_scenario, parent_config]

    def test_memoized_on_the_config_instance(self):
        config = single_fbs_scenario(n_gops=1, seed=7)
        first = scenario_hash(config)
        assert getattr(config, "_repro_scenario_hash") == first
        assert scenario_hash(config) == first
