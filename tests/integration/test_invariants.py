"""Cross-module property-based invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import get_allocator
from repro.core.dual import fast_solve
from repro.core.problem import SlotProblem, UserDemand, check_feasible
from repro.core.reference import exhaustive_reference_solution


@st.composite
def slot_problems(draw):
    """Random slot problems over 1-5 users and 1-3 FBSs."""
    n_users = draw(st.integers(1, 5))
    n_fbss = draw(st.integers(1, 3))
    users = []
    for j in range(n_users):
        users.append(UserDemand(
            user_id=j,
            fbs_id=draw(st.integers(1, n_fbss)),
            w_prev=draw(st.floats(20.0, 45.0)),
            success_mbs=draw(st.floats(0.0, 1.0)),
            success_fbs=draw(st.floats(0.0, 1.0)),
            r_mbs=draw(st.floats(0.0, 3.0)),
            r_fbs=draw(st.floats(0.0, 2.0)),
        ))

    expected = {i: draw(st.floats(0.0, 5.0)) for i in range(1, n_fbss + 1)}
    return SlotProblem(users=users, expected_channels=expected)


class TestAllocatorInvariants:
    @given(problem=slot_problems())
    @settings(max_examples=60, deadline=None)
    def test_fast_solve_feasible_and_nonnegative(self, problem):
        allocation = fast_solve(problem)
        check_feasible(problem, allocation)
        assert allocation.objective >= -1e-12

    @given(problem=slot_problems())
    @settings(max_examples=40, deadline=None)
    def test_heuristics_feasible(self, problem):
        for scheme in ("heuristic1", "heuristic2"):
            allocation = get_allocator(scheme).allocate(problem)
            check_feasible(problem, allocation)

    @given(problem=slot_problems())
    @settings(max_examples=30, deadline=None)
    def test_proposed_weakly_dominates_heuristics(self, problem):
        exact = exhaustive_reference_solution(problem)
        for scheme in ("heuristic1", "heuristic2"):
            heuristic = get_allocator(scheme).allocate(problem)
            assert heuristic.objective <= exact.objective + 1e-9

    @given(problem=slot_problems(), extra=st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_objective_monotone_in_channels(self, problem, extra):
        """Q is nondecreasing in every G_i -- the property the greedy's
        scan reduction and the relaxation bound both rest on."""
        base = exhaustive_reference_solution(problem).objective
        enlarged = problem.with_expected_channels(
            {i: g + extra for i, g in problem.expected_channels.items()})
        bigger = exhaustive_reference_solution(enlarged).objective
        assert bigger >= base - 1e-10


class TestEngineInvariants:
    def test_total_station_time_never_exceeds_one(self, single_config):
        from repro.sim.engine import SimulationEngine
        engine = SimulationEngine(single_config, record_slots=True)
        for _ in range(single_config.n_slots):
            record = engine.step()
            mbs_total = sum(record.allocation.rho_mbs.get(u.user_id, 0.0)
                            for u in record.problem.users
                            if record.allocation.uses_mbs(u.user_id))
            assert mbs_total <= 1.0 + 1e-9
            for fbs_id in record.problem.fbs_ids:
                total = sum(record.allocation.rho_fbs.get(u.user_id, 0.0)
                            for u in record.problem.users_of_fbs(fbs_id)
                            if not record.allocation.uses_mbs(u.user_id))
                assert total <= 1.0 + 1e-9

    def test_psnr_never_exceeds_sequence_ceiling(self, single_config):
        from repro.sim.engine import SimulationEngine
        from repro.video.sequences import get_sequence
        engine = SimulationEngine(single_config)
        ceilings = {
            user.user_id: get_sequence(user.sequence_name).rd.max_psnr_db
            for user in single_config.topology.users
        }
        for _ in range(single_config.n_slots):
            engine.step()
            for user_id, clock in engine.clocks.items():
                assert clock.psnr_db <= ceilings[user_id] + 1e-9
