"""Differential tests: batched sensing backend vs the scalar oracle.

Every batched sensing primitive -- observation realisation, Bayesian
fusion, belief tracking, access decisions -- is pinned bit for bit to
the scalar seed implementation over fuzzed inputs, including the
degenerate ``epsilon, delta in {0, 1}`` corners where the scalar path
short-circuits on zero/infinite likelihood ratios.
"""

import math

import numpy as np
import pytest

from repro.sensing.access import AccessPolicy, HardThresholdAccessPolicy
from repro.sensing.belief import ChannelBeliefTracker
from repro.sensing.detector import (
    SensingResult,
    SpectrumSensor,
    sense_observations_batched,
)
from repro.sensing.fusion import (
    fuse_posterior,
    fuse_posteriors_batched,
    likelihood_ratio_pair,
)
from repro.utils.errors import ConfigurationError

ERROR_PROFILES = [
    (0.1, 0.1),
    (0.45, 0.05),
    (0.0, 0.3),    # perfect idle detection: busy report has infinite LR
    (0.3, 0.0),    # perfect busy detection: idle report has zero LR
    (0.0, 0.0),    # oracle sensor
    (1.0, 0.3),    # always-busy reporter on idle channels
    (0.3, 1.0),
    (1.0, 1.0),    # inverted sensor
    (0.0, 1.0),    # both LRs degenerate (0/0 -> 1 convention)
]


def _results(channel, observations, false_alarm, miss_detection):
    """Wrap raw observations as the scalar path's SensingResult objects."""
    return [
        SensingResult(channel=channel, observation=int(obs),
                      false_alarm=false_alarm, miss_detection=miss_detection,
                      sensor_id=k)
        for k, obs in enumerate(observations)
    ]


class TestBatchedSensing:
    @pytest.mark.parametrize("false_alarm,miss_detection", ERROR_PROFILES)
    def test_matches_scalar_sense_loop(self, rng_pair, false_alarm,
                                       miss_detection):
        batched_rng, scalar_rng = rng_pair
        states = np.random.default_rng(11).integers(0, 2, size=200)
        batch = sense_observations_batched(
            states, false_alarm, miss_detection, rng=batched_rng)
        sensor = SpectrumSensor(false_alarm, miss_detection, rng=scalar_rng)
        scalars = [sensor.sense(m % 4, int(s)).observation
                   for m, s in enumerate(states)]
        assert batch.tolist() == scalars
        assert (batched_rng.bit_generator.state
                == scalar_rng.bit_generator.state)

    def test_sensor_method_shares_the_stream(self, rng_pair):
        batched_rng, scalar_rng = rng_pair
        batched = SpectrumSensor(0.2, 0.15, rng=batched_rng)
        scalar = SpectrumSensor(0.2, 0.15, rng=scalar_rng)
        states = [0, 1, 1, 0, 1, 0, 0, 1]
        batch = batched.sense_batched(states)
        scalars = [scalar.sense(0, s).observation for s in states]
        assert batch.tolist() == scalars

    def test_empty_batch_consumes_nothing(self, rng_pair):
        batched_rng, scalar_rng = rng_pair
        out = sense_observations_batched([], 0.1, 0.1, rng=batched_rng)
        assert out.size == 0
        assert (batched_rng.bit_generator.state
                == scalar_rng.bit_generator.state)

    def test_invalid_state_rejected(self):
        with pytest.raises(ConfigurationError):
            sense_observations_batched([0, 2], 0.1, 0.1)

    def test_non_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            sense_observations_batched([[0, 1]], 0.1, 0.1)


class TestLikelihoodRatioPair:
    @pytest.mark.parametrize("false_alarm,miss_detection", ERROR_PROFILES)
    def test_matches_per_result_property(self, false_alarm, miss_detection):
        lr_busy, lr_idle = likelihood_ratio_pair(false_alarm, miss_detection)
        busy = SensingResult(channel=0, observation=1,
                             false_alarm=false_alarm,
                             miss_detection=miss_detection)
        idle = SensingResult(channel=0, observation=0,
                             false_alarm=false_alarm,
                             miss_detection=miss_detection)
        assert lr_busy == busy.likelihood_ratio
        assert lr_idle == idle.likelihood_ratio


def _fuzz_fusion_case(rng, false_alarm, miss_detection):
    """Random per-channel priors, observation matrix, and counts."""
    n_channels = int(rng.integers(1, 8))
    max_obs = int(rng.integers(0, 7))
    priors = rng.uniform(0.0, 1.0, n_channels)
    # Hit the eta in {0, 1} short-circuits now and then.
    for eta in (0.0, 1.0):
        if rng.random() < 0.2 and n_channels > 1:
            priors[int(rng.integers(0, n_channels))] = eta
    observations = rng.integers(0, 2, size=(n_channels, max_obs)).astype(np.int8)
    counts = rng.integers(0, max_obs + 1, size=n_channels)
    return priors, observations, counts


class TestBatchedFusion:
    @pytest.mark.parametrize("false_alarm,miss_detection", ERROR_PROFILES)
    def test_matches_scalar_fusion_fuzzed(self, false_alarm, miss_detection):
        rng = np.random.default_rng(hash((false_alarm, miss_detection)) % 2**32)
        for _ in range(60):
            priors, observations, counts = _fuzz_fusion_case(
                rng, false_alarm, miss_detection)
            batch = fuse_posteriors_batched(
                priors, observations, counts, false_alarm, miss_detection)
            for m in range(priors.size):
                results = _results(m, observations[m, :counts[m]],
                                   false_alarm, miss_detection)
                scalar = fuse_posterior(float(priors[m]), results)
                assert batch[m] == scalar, (
                    f"channel {m}: batched {batch[m]!r} != scalar {scalar!r} "
                    f"(eta={priors[m]}, obs={observations[m, :counts[m]]}, "
                    f"eps={false_alarm}, delta={miss_detection})")

    def test_no_observations_returns_prior_complement(self):
        priors = np.array([0.3, 0.7, 0.0, 1.0])
        batch = fuse_posteriors_batched(
            priors, np.zeros((4, 0), dtype=np.int8), np.zeros(4, dtype=int),
            0.1, 0.1)
        assert batch.tolist() == [0.7, 1 - 0.7, 1.0, 0.0]

    def test_long_sequences_stay_in_log_space(self):
        # 2000 consistent busy reports would overflow a naive LR product;
        # the scalar path works in log space and so must the batched one.
        observations = np.ones((1, 2000), dtype=np.int8)
        batch = fuse_posteriors_batched(
            [0.5], observations, [2000], 0.1, 0.1)
        scalar = fuse_posterior(0.5, _results(0, observations[0], 0.1, 0.1))
        assert batch[0] == scalar == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            fuse_posteriors_batched([0.5, 0.5], np.zeros((3, 2)), [1, 1, 1],
                                    0.1, 0.1)

    def test_counts_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            fuse_posteriors_batched([0.5], np.zeros((1, 2)), [3], 0.1, 0.1)


class TestBatchedBeliefTracking:
    def test_multi_slot_trajectory_matches_scalar(self):
        rng = np.random.default_rng(17)
        n_channels, eps, delta = 5, 0.15, 0.1
        batched = ChannelBeliefTracker(n_channels, 0.2, 0.3)
        scalar = ChannelBeliefTracker(n_channels, 0.2, 0.3)
        for _ in range(25):
            priors_b = batched.predict()
            priors_s = scalar.predict()
            assert np.array_equal(priors_b, priors_s)
            max_obs = int(rng.integers(0, 5))
            observations = rng.integers(
                0, 2, size=(n_channels, max_obs)).astype(np.int8)
            counts = rng.integers(0, max_obs + 1, size=n_channels)
            batch = batched.fuse_batched(observations, counts, eps, delta)
            scalars = np.array([
                scalar.fuse(m, _results(m, observations[m, :counts[m]],
                                        eps, delta))
                for m in range(n_channels)
            ])
            assert np.array_equal(batch, scalars)
            assert np.array_equal(batched.busy_priors, scalar.busy_priors)

    def test_degenerate_profile_trajectory(self):
        batched = ChannelBeliefTracker(3, 0.4, 0.4)
        scalar = ChannelBeliefTracker(3, 0.4, 0.4)
        observations = np.array([[1], [0], [1]], dtype=np.int8)
        counts = np.ones(3, dtype=int)
        for _ in range(4):
            batch = batched.fuse_batched(observations, counts, 0.0, 0.3)
            scalars = np.array([
                scalar.fuse(m, _results(m, observations[m], 0.0, 0.3))
                for m in range(3)
            ])
            assert np.array_equal(batch, scalars)


@pytest.mark.parametrize("policy_cls", [AccessPolicy, HardThresholdAccessPolicy])
class TestBatchedAccess:
    def test_decide_batched_matches_decide(self, policy_cls):
        rng = np.random.default_rng(23)
        for _ in range(40):
            n_channels = int(rng.integers(1, 9))
            caps = rng.uniform(0.01, 0.6, n_channels)
            seed = int(rng.integers(0, 2**31))
            batched = policy_cls(caps, rng=np.random.default_rng(seed))
            scalar = policy_cls(caps, rng=np.random.default_rng(seed))
            for _ in range(5):
                posteriors = rng.uniform(0.0, 1.0, n_channels)
                if rng.random() < 0.25:
                    posteriors[int(rng.integers(0, n_channels))] = rng.choice(
                        [0.0, 1.0])
                a = batched.decide_batched(posteriors)
                b = scalar.decide(posteriors)
                assert np.array_equal(a.access_probabilities,
                                      b.access_probabilities)
                assert np.array_equal(a.decisions, b.decisions)
                assert np.array_equal(a.posteriors, b.posteriors)
                assert a.expected_available == b.expected_available

    def test_access_probabilities_match_scalar_rule(self, policy_cls):
        rng = np.random.default_rng(29)
        caps = rng.uniform(0.01, 0.5, 12)
        policy = policy_cls(caps)
        posteriors = rng.uniform(0.0, 1.0, 12)
        batch = policy.access_probabilities(posteriors)
        scalars = np.array([
            policy.access_probability(m, float(posteriors[m]))
            for m in range(12)
        ])
        assert np.array_equal(batch, scalars)

    def test_rng_stream_identical_after_decisions(self, policy_cls):
        batched = policy_cls([0.1, 0.2], rng=np.random.default_rng(7))
        scalar = policy_cls([0.1, 0.2], rng=np.random.default_rng(7))
        posteriors = np.array([0.8, 0.4])
        batched.decide_batched(posteriors)
        scalar.decide(posteriors)
        assert (batched._rng.bit_generator.state
                == scalar._rng.bit_generator.state)


class TestEngineSensingEquivalence:
    """The engine's fused per-slot sensing phase against the scalar oracle."""

    def test_sense_fuse_batched_matches_scalar(self, small_scenario):
        from repro.sim.engine import SimulationEngine
        batched = SimulationEngine(small_scenario)
        scalar = SimulationEngine(small_scenario)
        rng = np.random.default_rng(31)
        n_channels = small_scenario.n_channels
        for slot in range(3 * n_channels):
            batched._slot = scalar._slot = slot
            occupancy = rng.integers(0, 2, size=n_channels)
            a = batched._sense_fuse_batched(occupancy)
            b = scalar._sense_fuse_scalar(occupancy)
            assert np.array_equal(a, b)
            assert (batched._sensing_rng.bit_generator.state
                    == scalar._sensing_rng.bit_generator.state)

    def test_layout_cache_is_periodic(self, small_scenario):
        from repro.sim.engine import SimulationEngine
        engine = SimulationEngine(small_scenario)
        occupancy = np.zeros(small_scenario.n_channels, dtype=int)
        for slot in range(2 * small_scenario.n_channels):
            engine._slot = slot
            engine._sense_fuse_batched(occupancy)
        assert len(engine._sensing_layout) == small_scenario.n_channels


def test_log_likelihood_values_use_libm():
    """The two log-LR constants must come from math.log, not np.log."""
    lr_busy, lr_idle = likelihood_ratio_pair(0.13, 0.07)
    batch = fuse_posteriors_batched(
        [0.5], np.array([[1, 0]], dtype=np.int8), [2], 0.13, 0.07)
    expected = 1.0 / (1.0 + math.exp(math.log(1.0)
                                     + math.log(lr_busy) + math.log(lr_idle)))
    assert batch[0] == expected
