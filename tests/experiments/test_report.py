"""Tests for the text report renderers."""

import numpy as np
import pytest

from repro.experiments.fig3 import Fig3Row
from repro.experiments.report import (
    bound_reference_scheme,
    format_convergence,
    format_fig3,
    format_sweep,
)
from repro.sim.runner import SweepResult
from repro.sim.metrics import MetricsSummary
from repro.utils.stats import ConfidenceInterval


def _ci(mean):
    return ConfidenceInterval(mean=mean, half_width=0.5, confidence=0.95,
                              n_samples=5)


def _summary(mean, ub=None):
    return MetricsSummary(
        mean_psnr=_ci(mean),
        per_user_psnr={0: _ci(mean)},
        upper_bound_psnr=_ci(ub if ub is not None else mean),
        fairness=_ci(0.99),
        mean_collision_rate=_ci(0.18),
    )


class TestFormatFig3:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            format_fig3([])

    def test_contains_all_cells(self):
        rows = [Fig3Row(scheme="proposed",
                        per_user_psnr={0: _ci(38.0), 1: _ci(32.0)},
                        fairness=_ci(0.995))]
        text = format_fig3(rows)
        assert "38.00" in text and "32.00" in text
        assert "0.995" in text


class TestFormatSweep:
    def _sweep(self):
        result = SweepResult(parameter="eta", values=[0.3, 0.5])
        result.summaries["heuristic1"] = [_summary(33.0), _summary(31.0)]
        result.summaries["proposed-fast"] = [_summary(35.0, ub=36.0),
                                             _summary(33.0, ub=34.2)]
        return result

    def test_rows_per_value(self):
        text = format_sweep(self._sweep(), value_format="eta={}")
        assert "eta=0.3" in text and "eta=0.5" in text
        assert text.count("\n") == 2  # header + 2 rows

    def test_upper_bound_uses_proposed(self):
        text = format_sweep(self._sweep(), upper_bound=True)
        assert "36.00" in text and "34.20" in text

    def test_custom_value_format(self):
        result = SweepResult(parameter="pair", values=[(0.2, 0.48)])
        result.summaries["heuristic1"] = [_summary(31.0)]
        text = format_sweep(result, value_format="{0[0]}/{0[1]}")
        assert "0.2/0.48" in text


class TestBoundReference:
    def test_prefers_proposed(self):
        assert bound_reference_scheme(
            ["heuristic1", "proposed-fast"]) == "proposed-fast"
        assert bound_reference_scheme(["proposed", "heuristic2"]) == "proposed"

    def test_falls_back_to_first(self):
        assert bound_reference_scheme(["heuristic2", "heuristic1"]) == "heuristic2"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bound_reference_scheme([])


class TestFormatConvergence:
    def test_samples_and_final_row(self):
        trace = np.linspace([1.0, 2.0], [0.5, 1.0], num=100)
        text = format_convergence(trace, [0, 1], samples=5)
        lines = text.splitlines()
        assert "lambda_0" in lines[0] and "lambda_1" in lines[0]
        # Final iterate always included.
        assert lines[-1].split()[0] == "99"

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            format_convergence(np.empty((0, 2)), [0, 1])
