"""Tests for the MGS rate-distortion model (eq. 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.rd_model import MgsRateDistortion


class TestPsnr:
    def test_linear_model(self):
        rd = MgsRateDistortion(alpha_db=30.0, beta_db_per_mbps=25.0)
        assert rd.psnr(0.0) == 30.0
        assert rd.psnr(0.4) == pytest.approx(40.0)

    def test_saturation(self):
        rd = MgsRateDistortion(30.0, 25.0, max_rate_mbps=0.4)
        assert rd.psnr(0.4) == pytest.approx(40.0)
        assert rd.psnr(1.0) == pytest.approx(40.0)
        assert rd.max_psnr_db == pytest.approx(40.0)

    def test_unbounded_model(self):
        rd = MgsRateDistortion(30.0, 25.0)
        assert rd.max_psnr_db == float("inf")
        assert rd.psnr(100.0) == pytest.approx(30.0 + 2500.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            MgsRateDistortion(30.0, 25.0).psnr(-0.1)

    def test_invalid_constants(self):
        with pytest.raises(ValueError):
            MgsRateDistortion(-1.0, 25.0)
        with pytest.raises(ValueError):
            MgsRateDistortion(30.0, 0.0)
        with pytest.raises(ValueError):
            MgsRateDistortion(30.0, 25.0, max_rate_mbps=0.0)


class TestInverse:
    def test_round_trip(self):
        rd = MgsRateDistortion(28.0, 32.0)
        rate = rd.rate_for_psnr(36.0)
        assert rd.psnr(rate) == pytest.approx(36.0)

    def test_below_base_layer(self):
        rd = MgsRateDistortion(28.0, 32.0)
        assert rd.rate_for_psnr(20.0) == 0.0

    def test_unreachable_target(self):
        rd = MgsRateDistortion(28.0, 32.0, max_rate_mbps=0.2)
        with pytest.raises(ValueError):
            rd.rate_for_psnr(50.0)

    @given(psnr=st.floats(28.0, 60.0))
    @settings(max_examples=40)
    def test_property_round_trip(self, psnr):
        rd = MgsRateDistortion(28.0, 32.0)
        assert rd.psnr(rd.rate_for_psnr(psnr)) == pytest.approx(max(psnr, 28.0))


class TestSlotIncrement:
    def test_paper_constant(self):
        # R_{i,j} = beta_j * B_i / T (problem (10)).
        rd = MgsRateDistortion(28.0, 32.0)
        assert rd.slot_increment(0.3, 10) == pytest.approx(32.0 * 0.3 / 10.0)

    def test_full_gop_recovers_linear_model(self):
        # Receiving one full channel for all T slots = beta * B of quality.
        rd = MgsRateDistortion(28.0, 32.0)
        total = rd.slot_increment(0.3, 10) * 10
        assert 28.0 + total == pytest.approx(rd.psnr(0.3))

    def test_zero_bandwidth(self):
        assert MgsRateDistortion(28.0, 32.0).slot_increment(0.0, 10) == 0.0

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            MgsRateDistortion(28.0, 32.0).slot_increment(0.3, 0)
