"""Fig. 4(c) -- video quality vs channel utilisation (single FBS).

Paper claims: higher primary-user utilisation => fewer spectrum
opportunities => all curves decrease; the proposed scheme stays on top
with a ~3 dB margin over the heuristics in the mid-range.
"""

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro.experiments.fig4 import FIG4C_UTILIZATIONS, run_fig4c
from repro.experiments.report import format_sweep


def test_bench_fig4c(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4c(n_runs=BENCH_RUNS, n_gops=BENCH_GOPS, seed=BENCH_SEED),
        rounds=1, iterations=1)
    report("Fig. 4(c): Y-PSNR (dB) vs channel utilisation eta, single FBS",
           format_sweep(result, value_format="eta={}"))

    proposed = result.series("proposed-fast")
    heuristic1 = result.series("heuristic1")
    # Decreasing in eta for the spectrum-adaptive schemes.
    assert proposed[0] > proposed[-1]
    assert heuristic1[0] > heuristic1[-1]
    # Proposed on top at every sweep point.
    for index in range(len(FIG4C_UTILIZATIONS)):
        assert proposed[index] >= heuristic1[index] - 0.2
