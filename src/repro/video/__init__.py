"""MGS scalable-video model.

Implements the paper's video performance measure (Section III-E): the
quality of a reconstructed H.264/SVC medium-grain-scalable (MGS) video is
linear in the received data rate, ``W(R) = alpha + beta * R`` (eq. 9),
where ``W`` is the average Y-PSNR in dB.  Each GOP must be delivered
within ``T`` time slots; packets are sent in decreasing order of
significance and overdue packets are discarded.

The paper fits ``alpha`` and ``beta`` per sequence with the JVSM 9.13
codec on the CIF sequences *Bus*, *Mobile*, and *Harbor*; we ship
representative constants for the same sequences (see DESIGN.md, section 5,
for the substitution rationale).
"""

from repro.video.gop import GopClock
from repro.video.packets import NalPacket, packetize_gop
from repro.video.rd_model import MgsRateDistortion
from repro.video.sequences import SEQUENCE_LIBRARY, VideoSequence, get_sequence

__all__ = [
    "GopClock",
    "MgsRateDistortion",
    "NalPacket",
    "SEQUENCE_LIBRARY",
    "VideoSequence",
    "get_sequence",
    "packetize_gop",
]
