"""Slotted Monte-Carlo simulation of the femtocell CR network.

Mirrors the paper's evaluation methodology (Section V): each slot runs a
sensing phase (noisy observations, Bayesian fusion, collision-capped
access), an allocation phase (one of the four schemes), a transmission
phase (block-fading Bernoulli deliveries) and an ACK phase (assumed
error-free); GOP deadlines of ``T`` slots gate the PSNR accounting, and
each experiment point averages several independent runs with 95%
confidence intervals.
"""

from repro.sim.channel_assignment import color_partition_allocation
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.config import ScenarioConfig
from repro.sim.engine import SimulationEngine, SlotRecord
from repro.sim.fallback import DegradationEvent, FallbackChain
from repro.sim.metrics import FailedRun, RunMetrics, summarize_runs
from repro.sim.runner import MonteCarloRunner, SweepResult, sweep

__all__ = [
    "DegradationEvent",
    "FailedRun",
    "FallbackChain",
    "MonteCarloRunner",
    "RunMetrics",
    "ScenarioConfig",
    "SimulationEngine",
    "SlotRecord",
    "SweepCheckpoint",
    "SweepResult",
    "color_partition_allocation",
    "summarize_runs",
    "sweep",
]
