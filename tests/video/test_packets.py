"""Tests for NAL packetisation."""

import pytest

from repro.utils.errors import ConfigurationError
from repro.video.packets import NalPacket, packetize_gop, received_psnr
from repro.video.sequences import get_sequence


class TestPacketize:
    def test_total_bits_match_rate(self):
        seq = get_sequence("bus")
        packets = packetize_gop(seq, enhancement_rate_mbps=0.3)
        total_bits = sum(p.size_bits for p in packets)
        assert total_bits == int(round(0.3e6 * seq.gop_duration_s))

    def test_decreasing_significance_order(self):
        packets = packetize_gop(get_sequence("bus"), enhancement_rate_mbps=0.2)
        assert [p.index for p in packets] == list(range(len(packets)))

    def test_total_gain_matches_linear_model(self):
        # Receiving every packet must reproduce eq. (9) at the full rate.
        seq = get_sequence("harbor")
        rate = 0.25
        packets = packetize_gop(seq, enhancement_rate_mbps=rate)
        full = received_psnr(seq, packets, len(packets))
        # Agreement up to the single-bit quantisation of the GOP payload.
        assert full == pytest.approx(seq.rd.psnr(rate), abs=1e-3)

    def test_zero_rate_no_packets(self):
        assert packetize_gop(get_sequence("bus"), enhancement_rate_mbps=0.0) == []

    def test_nonstandard_packet_size(self):
        packets = packetize_gop(get_sequence("bus"), enhancement_rate_mbps=0.1,
                                packet_size_bits=1000)
        assert all(p.size_bits <= 1000 for p in packets)

    def test_invalid_inputs(self):
        seq = get_sequence("bus")
        with pytest.raises(ConfigurationError):
            packetize_gop(seq, enhancement_rate_mbps=-0.1)
        with pytest.raises(ConfigurationError):
            packetize_gop(seq, enhancement_rate_mbps=0.1, packet_size_bits=0)


class TestReceivedPsnr:
    def test_prefix_quality_monotone(self):
        seq = get_sequence("mobile")
        packets = packetize_gop(seq, enhancement_rate_mbps=0.2)
        qualities = [received_psnr(seq, packets, k) for k in range(len(packets) + 1)]
        assert qualities[0] == seq.base_psnr_db
        assert all(b >= a for a, b in zip(qualities, qualities[1:]))

    def test_count_clamped_to_available(self):
        seq = get_sequence("mobile")
        packets = packetize_gop(seq, enhancement_rate_mbps=0.1)
        assert received_psnr(seq, packets, 10**6) == received_psnr(
            seq, packets, len(packets))

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            received_psnr(get_sequence("bus"), [], -1)


class TestNalPacket:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NalPacket(index=-1, size_bits=100, psnr_gain_db=0.1)
        with pytest.raises(ConfigurationError):
            NalPacket(index=0, size_bits=0, psnr_gain_db=0.1)
        with pytest.raises(ConfigurationError):
            NalPacket(index=0, size_bits=100, psnr_gain_db=-0.1)
