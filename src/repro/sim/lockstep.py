"""Cross-replication lockstep batching of the allocation phase.

The dual solves inside one slot are inherently sequential (each greedy
``Q(c)`` evaluation warm-starts from the previous one), but *different
replications* of the same scenario are completely independent -- and,
sharing one :class:`~repro.sim.build.BuiltScenario`, they produce slot
problems of identical shape.  This module advances B sibling engines in
lockstep through their slot generators (:meth:`SimulationEngine._step_iter`),
collects the :class:`~repro.core.batch.SolveRequest` each yields, and
answers a whole round with one call to the stacked kernel
(:func:`~repro.core.batch.solve_requests`).

Correctness contract
--------------------
Each member's computation is *exactly* the serial one: the generator
protocol fixes the order of its solves, the kernel answers each request
bit-identically to the scalar solver, every engine advance runs under
the member's own private metrics registry (so obs snapshots match the
unbatched ``execute_run``), and a member that raises a
:class:`~repro.utils.errors.ReproError` is dropped from the formation
and re-run standalone through the normal per-cell path -- whose retry
semantics then apply verbatim.  Phase timings are the only telemetry
that needs repair: a suspended member's wall clock keeps running while
its batch mates compute, so the driver refunds each member the
suspension time beyond its fair share of the kernel (timings are
explicitly excluded from serialized results, so this is cosmetic).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.accel import acceleration_enabled
from repro.core.batch import answer_request, batching_enabled, solve_requests
from repro.exec.plan import Cell
from repro.obs.logging import get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    global_registry,
    metrics_enabled,
    set_global_registry,
)
from repro.obs.trace import active_tracer
from repro.registry.schemes import scheme_registry
from repro.sim.engine import SimulationEngine
from repro.store.scenario_store import built_for
from repro.utils.errors import ReproError
from repro.utils.rng import derive_seed

logger = get_logger(__name__)

#: Largest lockstep formation.  The stacked kernel's per-iteration cost
#: is nearly flat in B, but memory for B live engines adds up and wider
#: groups drag more members through the slowest member's convergence
#: tail before the remnant drops to the scalar continuation.
MAX_BATCH = 32

#: Advance outcomes.
_PENDING, _DONE, _FAILED = "pending", "done", "failed"


def lockstep_eligible() -> bool:
    """Whether this process may batch replications at all.

    Batching rides the acceleration switch (the kernel is the stacked
    sibling of the accelerated solver path), has its own kill switch,
    and stands down under an active tracer -- span nesting assumes one
    replication at a time.
    """
    return (acceleration_enabled() and batching_enabled()
            and active_tracer() is None)


def batchable_schemes() -> Tuple[str, ...]:
    """Registered schemes carrying the ``batchable`` capability."""
    return tuple(info.name for info in scheme_registry() if info.batchable)


def _cell_batchable(cell: Cell) -> bool:
    registry = scheme_registry()
    return (cell.scheme in registry
            and registry.get(cell.scheme).batchable
            and cell.config.fault_plan is None
            and cell.config.seed is not None)


def plan_batch_groups(cells: Sequence[Cell]) -> List[List[Cell]]:
    """Split cells into consecutive runs that may share a formation.

    Cells group only when they are replications of the *same* derived
    config (object identity -- the planner shares one config across a
    scheme's replications, and pickling a chunk preserves the sharing),
    use a batchable scheme, carry a root seed (per-member seeds derive
    deterministically), and have no fault plan (fault hooks are stateful
    per replication).  Unbatchable cells come back as singleton groups,
    preserving plan order.
    """
    groups: List[List[Cell]] = []
    current: List[Cell] = []
    for cell in cells:
        if (current and len(current) < MAX_BATCH
                and _cell_batchable(cell)
                and _cell_batchable(current[-1])
                and cell.config is current[-1].config):
            current.append(cell)
        else:
            if current:
                groups.append(current)
            current = [cell]
    if current:
        groups.append(current)
    return groups


class _ScopedRegistry:
    """Swap the global registry for one member's advance (or no-op)."""

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> None:
        if self.registry is not None:
            self._previous = set_global_registry(self.registry)

    def __exit__(self, *exc_info) -> None:
        if self.registry is not None:
            set_global_registry(self._previous)


class _LockstepMember:
    """One replication advancing through the formation."""

    __slots__ = ("cell", "registry", "engine", "gen", "request",
                 "request_time", "busy_seconds", "overcharge", "error")

    def __init__(self, cell: Cell, registry: Optional[MetricsRegistry],
                 engine: SimulationEngine) -> None:
        self.cell = cell
        self.registry = registry
        self.engine = engine
        self.gen = None
        self.request = None
        self.request_time = 0.0
        self.busy_seconds = 0.0
        self.overcharge = 0.0
        self.error: Optional[ReproError] = None

    def advance(self, payload=None) -> str:
        """Drive the slot generator one hop under the member registry.

        ``payload`` is ``None`` to start a fresh slot, a
        :class:`~repro.core.dual.DualSolution` to answer the pending
        request, or a :class:`ReproError` to raise *at the yield point*
        -- exactly where the scalar solver would have raised -- so the
        engine's own degradation paths (fallback chain) run unchanged.
        """
        start = time.perf_counter()
        try:
            with _ScopedRegistry(self.registry):
                if self.gen is None:
                    self.gen = self.engine._step_iter(None)
                    self.request = self.gen.send(None)
                elif isinstance(payload, ReproError):
                    self.request = self.gen.throw(payload)
                else:
                    self.request = self.gen.send(payload)
            self.request_time = time.perf_counter()
            self.busy_seconds += self.request_time - start
            return _PENDING
        except StopIteration:
            self.gen = None
            self.request = None
            self.busy_seconds += time.perf_counter() - start
            return _DONE
        except ReproError as exc:
            self.gen = None
            self.request = None
            self.busy_seconds += time.perf_counter() - start
            self.error = exc
            return _FAILED


def run_cells_lockstep(
        cells: Sequence[Cell],
        fallback: Callable[[Cell], Tuple[str, object, float]],
) -> List[Tuple[str, object, float]]:
    """Execute a batch group in lockstep; return ``(key, result, seconds)``.

    Mirrors what ``_execute_cell`` would produce for each cell, in cell
    order.  Members that fail anywhere -- scenario build, any slot --
    are handed to ``fallback`` (the per-cell path), so isolation and
    retry semantics are byte-for-byte the unbatched ones.
    """
    cells = list(cells)
    observing = metrics_enabled()
    config = cells[0].config
    members: List[_LockstepMember] = []
    escaped: List[Cell] = []
    refused = 0

    for cell in cells:
        seed = derive_seed(config.seed, cell.run_index, 0)
        seeded = config.with_seed(seed)
        registry = MetricsRegistry() if observing else None
        start = time.perf_counter()
        try:
            with _ScopedRegistry(registry):
                engine = SimulationEngine(seeded, built=built_for(seeded))
        except ReproError:
            # Build failed; the per-cell path will fail (and retry)
            # identically on its own clock.
            escaped.append(cell)
            continue
        if not hasattr(engine.allocator, "allocate_iter"):
            # The scheme registered itself batchable but its allocator
            # cannot yield solve requests; refuse the claim and run the
            # cell through the inline per-cell path instead of crashing
            # the formation mid-slot.
            refused += 1
            escaped.append(cell)
            continue
        member = _LockstepMember(cell, registry, engine)
        member.busy_seconds += time.perf_counter() - start
        members.append(member)

    live = list(members)
    rounds = 0
    batched_solves = 0
    for _ in range(config.n_slots):
        if not live:
            break
        pending: List[_LockstepMember] = []
        for member in list(live):
            status = member.advance(None)
            if status == _PENDING:
                pending.append(member)
            elif status == _FAILED:
                live.remove(member)
                escaped.append(member.cell)
        while pending:
            requests = [member.request for member in pending]
            kernel_start = time.perf_counter()
            try:
                answers = solve_requests(requests)
            except ReproError:
                # The stacked kernel refused the round; answer each
                # request alone and deliver per-member results or
                # exceptions, exactly as the scalar path would.
                answers = []
                for request in requests:
                    try:
                        answers.append(answer_request(request))
                    except ReproError as exc:
                        answers.append(exc)
            share = (time.perf_counter() - kernel_start) / len(pending)
            rounds += 1
            batched_solves += len(pending)
            next_pending: List[_LockstepMember] = []
            for member, answer in zip(pending, answers):
                member.busy_seconds += share
                # Refund the suspension: wall time since this member
                # yielded, minus its fair share of the kernel round.
                member.overcharge += max(
                    0.0, (time.perf_counter() - member.request_time) - share)
                status = member.advance(answer)
                if status == _PENDING:
                    next_pending.append(member)
                elif status == _FAILED:
                    live.remove(member)
                    escaped.append(member.cell)
            pending = next_pending

    results = {}
    for member in live:
        start = time.perf_counter()
        engine = member.engine
        engine.phase_seconds["allocation"] = max(
            0.0, engine.phase_seconds["allocation"] - member.overcharge)
        with _ScopedRegistry(member.registry):
            metrics = engine.collect_metrics()
        if observing:
            from dataclasses import replace

            metrics = replace(metrics,
                              obs_snapshot=member.registry.snapshot())
        member.busy_seconds += time.perf_counter() - start
        results[member.cell.key] = (member.cell.key, metrics,
                                    member.busy_seconds)

    if observing:
        registry = global_registry()
        registry.counter("repro_lockstep_groups_total").inc()
        registry.counter("repro_lockstep_batch_members_total").inc(
            len(members))
        registry.counter("repro_lockstep_rounds_total").inc(rounds)
        registry.counter("repro_lockstep_batched_solves_total").inc(
            batched_solves)
        if refused:
            registry.counter("repro_lockstep_refused_total").inc(refused)
        if escaped:
            registry.counter("repro_lockstep_escapes_total").inc(
                len(escaped))
    if escaped:
        logger.warning("lockstep group: %d member(s) escaped to the "
                       "per-cell path: %s", len(escaped),
                       ", ".join(cell.key for cell in escaped))
    for cell in escaped:
        results[cell.key] = fallback(cell)
    return [results[cell.key] for cell in cells]
