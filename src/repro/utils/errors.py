"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An input, parameter, or scenario configuration is invalid.

    Inherits from :class:`ValueError` so that call sites which validate
    scalar arguments behave like idiomatic Python APIs.
    """


class InfeasibleProblemError(ReproError):
    """A resource-allocation problem instance has no feasible solution."""


class NumericalError(ReproError):
    """A non-finite value (NaN/inf) surfaced where a finite one is required.

    Raised by runtime validation points (fading draws, slot allocations)
    so that numerical corruption is reported as a structured, catchable
    library failure instead of silently propagating through the PSNR
    recursion.
    """


class AllocationFailedError(ReproError):
    """Every allocator in a slot's fallback chain failed to produce a
    usable allocation.

    Carries the per-stage degradation events so callers can see exactly
    which allocator failed with which cause.

    Attributes
    ----------
    events:
        The :class:`~repro.sim.fallback.DegradationEvent` records of the
        failed stages (one per attempted allocator).
    """

    def __init__(self, message, events=()):
        super().__init__(message)
        self.events = tuple(events)


class CheckpointError(ReproError):
    """A sweep checkpoint file is unreadable or inconsistent with the
    sweep being resumed."""


class SweepInterrupted(ReproError):
    """A sweep drained and stopped early because a shutdown signal arrived.

    Raised by the Monte-Carlo harness after a
    :class:`~repro.exec.supervisor.ShutdownCoordinator` entered its
    draining stage and some cells were left unexecuted.  Completed cells
    are already checkpointed (when a checkpoint path was given), so the
    sweep can be resumed later; the CLI maps this to its documented
    graceful-shutdown exit code.
    """


class SweepDeadlineExceeded(ReproError):
    """The whole-sweep wall-clock deadline expired before every cell
    completed.

    Raised by the supervised executor when ``--deadline`` elapses:
    in-flight workers are killed (their cells re-run on resume, they are
    *not* recorded as failed) and already-completed cells survive in the
    checkpoint.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final value of the convergence criterion.
    """

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
