"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.errors import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_index,
    check_positive,
    check_probability,
    check_probability_array,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan"), float("inf")])
    def test_invalid(self, value):
        with pytest.raises(ConfigurationError):
            check_probability(value, "p")

    def test_open_endpoints(self):
        with pytest.raises(ConfigurationError):
            check_probability(0.0, "p", allow_zero=False)
        with pytest.raises(ConfigurationError):
            check_probability(1.0, "p", allow_one=False)
        assert check_probability(0.5, "p", allow_zero=False, allow_one=False) == 0.5

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="gamma"):
            check_probability(2.0, "gamma")

    def test_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_probability("abc", "p")


class TestCheckProbabilityArray:
    def test_valid(self):
        arr = check_probability_array([0.1, 0.9], "arr")
        assert isinstance(arr, np.ndarray)
        assert arr.dtype == float

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            check_probability_array([], "arr")

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            check_probability_array([0.5, 1.5], "arr")

    def test_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            check_probability_array([[0.5]], "arr")

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            check_probability_array([0.5, float("nan")], "arr")


class TestCheckPositive:
    def test_positive_ok(self):
        assert check_positive(3.5, "x") == 3.5

    def test_zero_rejected_by_default(self):
        with pytest.raises(ConfigurationError):
            check_positive(0.0, "x")

    def test_zero_allowed_when_requested(self):
        assert check_positive(0.0, "x", allow_zero=True) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            check_positive(-1.0, "x", allow_zero=True)

    def test_inf_rejected(self):
        with pytest.raises(ConfigurationError):
            check_positive(float("inf"), "x")


class TestCheckInRange:
    def test_inclusive(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0

    def test_exclusive(self):
        with pytest.raises(ConfigurationError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)

    def test_outside(self):
        with pytest.raises(ConfigurationError):
            check_in_range(3.0, "x", 1.0, 2.0)


class TestCheckIndex:
    def test_valid(self):
        assert check_index(2, "i", 5) == 2

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            check_index(True, "i")

    def test_float_rejected(self):
        with pytest.raises(ConfigurationError):
            check_index(1.0, "i")

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            check_index(-1, "i")

    def test_size_bound(self):
        with pytest.raises(ConfigurationError):
            check_index(5, "i", 5)

    def test_numpy_integer_accepted(self):
        assert check_index(np.int64(3), "i", 10) == 3
