"""Log-distance path loss and mean-SINR derivation.

The paper's evaluation does not publish its link budget; it only requires
*some* mapping from geometry to the per-link mean SINR that parameterises
the block-fading CDF of eq. (8).  We use the standard log-distance model
from Rappaport (the paper's reference [19]):

    PL(d) = PL(d0) + 10 n log10(d / d0)     [dB]

with distinct exponents for the indoor femtocell tier and the outdoor
macrocell tier -- femtocell links are short and benefit from low transmit
power yet high SINR, which is the premise of the paper's Introduction.
"""

from __future__ import annotations

import math

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive


class LogDistancePathLoss:
    """Log-distance path-loss model.

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n`` (2 = free space, 3-4 = urban macro).
    reference_distance_m:
        Reference distance ``d0`` in metres.
    reference_loss_db:
        Path loss at ``d0`` in dB.
    """

    def __init__(self, exponent: float = 3.0, reference_distance_m: float = 1.0,
                 reference_loss_db: float = 37.0) -> None:
        self.exponent = check_positive(exponent, "exponent")
        self.reference_distance_m = check_positive(
            reference_distance_m, "reference_distance_m")
        if not math.isfinite(reference_loss_db):
            raise ConfigurationError(
                f"reference_loss_db must be finite, got {reference_loss_db}")
        self.reference_loss_db = float(reference_loss_db)

    def loss_db(self, distance_m: float) -> float:
        """Path loss in dB at ``distance_m`` (clamped to ``d0`` minimum).

        Distances below the reference distance are clamped to ``d0`` -- the
        far-field model is not valid there and extrapolating would predict
        unphysical gains.
        """
        distance_m = check_positive(distance_m, "distance_m")
        distance_m = max(distance_m, self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(
            distance_m / self.reference_distance_m)

    def __repr__(self) -> str:
        return (f"LogDistancePathLoss(n={self.exponent}, d0={self.reference_distance_m} m, "
                f"PL0={self.reference_loss_db} dB)")


def mean_sinr_db(tx_power_dbm: float, distance_m: float, pathloss: LogDistancePathLoss,
                 noise_dbm: float = -100.0, interference_dbm: float = float("-inf")) -> float:
    """Mean received SINR in dB for a link.

    Parameters
    ----------
    tx_power_dbm:
        Transmit power in dBm.
    distance_m:
        Link distance in metres.
    pathloss:
        Path-loss model.
    noise_dbm:
        Thermal-noise floor in dBm.
    interference_dbm:
        Aggregate interference power in dBm (``-inf`` for none).  The
        interfering-FBS case never produces co-channel interference at the
        allocation level (the interference graph forbids it), but residual
        cross-tier interference can be modelled here.
    """
    rx_dbm = float(tx_power_dbm) - pathloss.loss_db(distance_m)
    denominator_mw = 10.0 ** (noise_dbm / 10.0)
    if interference_dbm != float("-inf"):
        denominator_mw += 10.0 ** (interference_dbm / 10.0)
    return rx_dbm - 10.0 * math.log10(denominator_mw)


def db_to_linear(value_db: float) -> float:
    """Convert a dB quantity to linear scale."""
    return 10.0 ** (float(value_db) / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear quantity to dB."""
    value = check_positive(value, "value")
    return 10.0 * math.log10(value)
