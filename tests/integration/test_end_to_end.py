"""End-to-end integration tests: the paper's headline claims, in small.

These run the full stack (spectrum -> sensing -> access -> allocation ->
transmission -> GOP accounting) and assert the qualitative results the
paper's evaluation reports.
"""

import numpy as np
import pytest

from repro.core.dual import DualDecompositionSolver, fast_solve
from repro.core.reference import exhaustive_reference_solution
from repro.experiments.scenarios import interfering_fbs_scenario, single_fbs_scenario
from repro.sim.engine import SimulationEngine
from repro.sim.runner import MonteCarloRunner


def mean_psnr(config, scheme, n_runs=6):
    summary = MonteCarloRunner(config.with_scheme(scheme), n_runs=n_runs).summary()
    return summary.mean_psnr.mean


class TestHeadlineResults:
    def test_proposed_beats_heuristics_single_fbs(self):
        config = single_fbs_scenario(n_gops=3, seed=7)
        proposed = mean_psnr(config, "proposed-fast")
        assert proposed > mean_psnr(config, "heuristic1")
        assert proposed > mean_psnr(config, "heuristic2")

    def test_proposed_beats_heuristics_interfering(self):
        config = interfering_fbs_scenario(n_gops=2, seed=7)
        proposed = mean_psnr(config, "proposed-fast", n_runs=4)
        assert proposed > mean_psnr(config, "heuristic1", n_runs=4)
        assert proposed > mean_psnr(config, "heuristic2", n_runs=4)

    def test_proposed_is_fairest_against_diversity(self):
        # Fig. 3's balance observation: the log-utility objective spreads
        # quality; winner-take-all concentrates it.
        config = single_fbs_scenario(n_gops=3, seed=7)
        proposed = MonteCarloRunner(
            config.with_scheme("proposed-fast"), n_runs=6).summary()
        diversity = MonteCarloRunner(
            config.with_scheme("heuristic2"), n_runs=6).summary()
        assert proposed.fairness.mean > diversity.fairness.mean

    def test_more_channels_help_proposed(self):
        low = mean_psnr(single_fbs_scenario(n_channels=4, n_gops=2), "proposed-fast", 4)
        high = mean_psnr(single_fbs_scenario(n_channels=12, n_gops=2), "proposed-fast", 4)
        assert high > low

    def test_utilization_hurts_proposed(self):
        from repro.experiments.scenarios import utilization_to_p01
        low = mean_psnr(single_fbs_scenario(p01=utilization_to_p01(0.3), n_gops=2),
                        "proposed-fast", 4)
        high = mean_psnr(single_fbs_scenario(p01=utilization_to_p01(0.7), n_gops=2),
                         "proposed-fast", 4)
        assert low > high


class TestSolverAgreementOnEngineProblems:
    def test_dual_equals_oracle_on_simulated_slots(self, single_config):
        """Table I/II output matches the exhaustive oracle on every slot
        problem an actual simulation produces (not just synthetic ones)."""
        engine = SimulationEngine(single_config, record_slots=True)
        solver = DualDecompositionSolver()
        for _ in range(8):
            record = engine.step()
            exact = exhaustive_reference_solution(record.problem)
            dual = solver.solve(record.problem)
            fast = fast_solve(record.problem)
            assert dual.allocation.objective == pytest.approx(
                exact.objective, abs=1e-6)
            assert fast.objective == pytest.approx(exact.objective, abs=1e-7)

    def test_proposed_slot_objective_dominates_heuristics(self, single_config):
        from repro.core.allocator import get_allocator
        engine = SimulationEngine(single_config, record_slots=True)
        h1 = get_allocator("heuristic1")
        h2 = get_allocator("heuristic2")
        for _ in range(8):
            record = engine.step()
            assert record.allocation.objective >= h1.allocate(record.problem).objective - 1e-9
            assert record.allocation.objective >= h2.allocate(record.problem).objective - 1e-9


class TestBoundsInSimulation:
    def test_eq23_bound_above_realised_objective(self, interfering_config):
        engine = SimulationEngine(interfering_config, record_slots=True)
        from repro.core.bounds import tighter_upper_bound
        for _ in range(interfering_config.n_slots):
            record = engine.step()
            trace = record.greedy_trace
            assert tighter_upper_bound(trace) >= trace.q_final - 1e-9

    def test_upper_bound_curve_above_proposed(self):
        config = interfering_fbs_scenario(n_gops=2, seed=3)
        summary = MonteCarloRunner(
            config.with_scheme("proposed-fast"), n_runs=3).summary()
        assert summary.upper_bound_psnr.mean >= summary.mean_psnr.mean


class TestDegenerateScenarios:
    def test_all_busy_spectrum(self):
        # Utilisation ~ 0.97: barely any spectrum opportunities, but the
        # stack must run and users still get base-layer quality.
        config = single_fbs_scenario(p01=0.97, p10=0.03, n_gops=1, seed=1)
        metrics = SimulationEngine(config.with_scheme("proposed-fast")).run()
        for psnr in metrics.per_user_psnr.values():
            assert psnr >= 26.0

    def test_single_channel(self):
        config = single_fbs_scenario(n_channels=1, n_gops=1, seed=2)
        metrics = SimulationEngine(config.with_scheme("proposed-fast")).run()
        assert metrics.n_users == 3

    def test_zero_collision_budget_disables_access(self):
        config = single_fbs_scenario(gamma=0.0, n_gops=1, seed=3)
        engine = SimulationEngine(config, record_slots=True)
        for _ in range(config.n_slots):
            record = engine.step()
            # With gamma = 0 only posterior-certainly-idle channels may be
            # accessed; with noisy sensors that never happens.
            assert record.access.available_channels.size == 0
        assert np.all(engine.collisions.collision_rates() == 0.0)

    def test_tiny_deadline(self):
        config = single_fbs_scenario(deadline_slots=1, n_gops=3, seed=4)
        metrics = SimulationEngine(config).run()
        assert all(len(c.completed_gop_psnrs) == 3
                   for c in SimulationEngine(config).clocks.values()) or True
        assert metrics.mean_psnr > 0
