"""Tests for the sequence library."""

import pytest

from repro.utils.errors import ConfigurationError
from repro.video.sequences import SEQUENCE_LIBRARY, VideoSequence, get_sequence
from repro.video.rd_model import MgsRateDistortion


class TestLibrary:
    def test_paper_sequences_present(self):
        for name in ("bus", "mobile", "harbor"):
            seq = get_sequence(name)
            assert seq.resolution == (352, 288)  # CIF, Section V
            assert seq.gop_size == 16

    def test_lookup_case_insensitive(self):
        assert get_sequence("Bus") is get_sequence("bus")

    def test_unknown_sequence_lists_available(self):
        with pytest.raises(ConfigurationError, match="bus"):
            get_sequence("nosuchvideo")

    def test_mobile_is_hardest(self):
        # Published MGS orderings: Mobile has the lowest base-layer PSNR.
        alphas = {name: seq.rd.alpha_db for name, seq in SEQUENCE_LIBRARY.items()}
        assert alphas["mobile"] == min(alphas.values())

    def test_bus_has_steepest_slope_of_paper_trio(self):
        betas = {name: get_sequence(name).rd.beta_db_per_mbps
                 for name in ("bus", "mobile", "harbor")}
        assert betas["bus"] == max(betas.values())

    def test_all_sequences_saturate(self):
        # Finite enhancement layers: see module docstring (saturation is
        # the mechanism penalising winner-take-all schedulers).
        for seq in SEQUENCE_LIBRARY.values():
            assert seq.rd.max_rate_mbps < float("inf")
            assert 35.0 < seq.rd.max_psnr_db < 50.0

    def test_gop_duration(self):
        seq = get_sequence("bus")
        assert seq.gop_duration_s == pytest.approx(16.0 / 30.0)

    def test_base_psnr_property(self):
        seq = get_sequence("harbor")
        assert seq.base_psnr_db == seq.rd.alpha_db


class TestVideoSequenceValidation:
    def test_invalid_gop(self):
        with pytest.raises(ConfigurationError):
            VideoSequence("x", (352, 288), 30.0, 0, MgsRateDistortion(30, 30))

    def test_invalid_frame_rate(self):
        with pytest.raises(ConfigurationError):
            VideoSequence("x", (352, 288), 0.0, 16, MgsRateDistortion(30, 30))

    def test_invalid_resolution(self):
        with pytest.raises(ConfigurationError):
            VideoSequence("x", (0, 288), 30.0, 16, MgsRateDistortion(30, 30))


class TestRdSlotTable:
    """The process-wide R-D increment cache (DESIGN.md section 14)."""

    @pytest.fixture(autouse=True)
    def fresh_table(self):
        from repro.video.sequences import reset_rd_table
        reset_rd_table()
        yield
        reset_rd_table()

    def test_cached_value_is_bit_identical(self):
        from repro.video.sequences import rd_slot_increment
        direct = get_sequence("bus").rd.slot_increment(0.6, 16)
        assert rd_slot_increment("bus", 0.6, 16) == direct  # miss
        assert rd_slot_increment("bus", 0.6, 16) == direct  # hit

    def test_hit_miss_counters(self):
        from repro.video import sequences
        sequences.rd_slot_increment("bus", 0.6, 16)
        sequences.rd_slot_increment("Bus", 0.6, 16)  # case-folded key
        sequences.rd_slot_increment("bus", 0.7, 16)
        assert sequences.rd_table_misses == 2
        assert sequences.rd_table_hits == 1

    def test_obs_counter_when_metrics_enabled(self):
        from repro.obs.metrics import (
            enable_metrics,
            reset_metrics,
            scoped_registry,
        )
        from repro.video.sequences import rd_slot_increment
        enable_metrics(True)
        try:
            with scoped_registry() as registry:
                rd_slot_increment("mobile", 0.6, 16)
                rd_slot_increment("mobile", 0.6, 16)
                counters = registry.counters()
        finally:
            enable_metrics(False)
            reset_metrics()
        assert counters[
            'repro_video_rd_table_requests_total{result="miss"}'] == 1.0
        assert counters[
            'repro_video_rd_table_requests_total{result="hit"}'] == 1.0

    def test_reset_clears_table_and_counters(self):
        from repro.video import sequences
        sequences.rd_slot_increment("bus", 0.6, 16)
        sequences.reset_rd_table()
        assert sequences.rd_table_hits == 0
        assert sequences.rd_table_misses == 0
        sequences.rd_slot_increment("bus", 0.6, 16)
        assert sequences.rd_table_misses == 1
