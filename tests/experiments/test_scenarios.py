"""Tests for the paper's evaluation scenarios."""

import pytest

from repro.experiments.scenarios import (
    PAPER_SEQUENCES,
    interfering_fbs_scenario,
    single_fbs_scenario,
    utilization_to_p01,
)
from repro.utils.errors import ConfigurationError


class TestSingleFbsScenario:
    def test_section_va_parameters(self):
        config = single_fbs_scenario()
        assert config.n_channels == 8
        assert config.p01 == 0.4 and config.p10 == 0.3
        assert config.gamma == 0.2
        assert config.false_alarm == config.miss_detection == 0.3
        assert config.deadline_slots == 10

    def test_three_users_with_paper_sequences(self):
        config = single_fbs_scenario()
        assert config.topology.n_users == 3
        assert config.topology.n_fbss == 1
        sequences = [u.sequence_name for u in config.topology.users]
        assert sequences == list(PAPER_SEQUENCES)

    def test_no_interference(self):
        config = single_fbs_scenario()
        assert config.topology.interference_graph.number_of_edges() == 0

    def test_gop_size_16(self):
        from repro.video.sequences import get_sequence
        for user in single_fbs_scenario().topology.users:
            assert get_sequence(user.sequence_name).gop_size == 16

    def test_overrides_forwarded(self):
        config = single_fbs_scenario(n_channels=12, gamma=0.1, n_gops=5)
        assert config.n_channels == 12
        assert config.gamma == 0.1
        assert config.n_gops == 5

    def test_heterogeneous_links(self):
        topology = single_fbs_scenario().topology
        assert len(set(topology.fbs_success.values())) == 3


class TestInterferingScenario:
    def test_fig5_chain(self):
        graph = interfering_fbs_scenario().topology.interference_graph
        assert sorted(graph.nodes) == [1, 2, 3]
        assert sorted(graph.edges) == [(1, 2), (2, 3)]

    def test_chain_matches_coverage_geometry(self):
        # The explicit edge list must agree with what the disks imply.
        from repro.net.interference import build_interference_graph
        topology = interfering_fbs_scenario().topology
        geometric = build_interference_graph(topology.fbss)
        assert sorted(geometric.edges) == sorted(
            topology.interference_graph.edges)

    def test_nine_users_three_per_cell(self):
        topology = interfering_fbs_scenario().topology
        assert topology.n_users == 9
        for fbs_id in (1, 2, 3):
            assert len(topology.users_of_fbs(fbs_id)) == 3

    def test_each_cell_streams_three_videos(self):
        topology = interfering_fbs_scenario().topology
        for fbs_id in (1, 2, 3):
            names = {u.sequence_name for u in topology.users_of_fbs(fbs_id)}
            assert names == set(PAPER_SEQUENCES)


class TestUtilizationInversion:
    @pytest.mark.parametrize("eta", [0.3, 0.5, 0.7])
    def test_round_trip(self, eta):
        p01 = utilization_to_p01(eta)
        assert p01 / (p01 + 0.3) == pytest.approx(eta)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            utilization_to_p01(1.0)
        with pytest.raises(ConfigurationError):
            utilization_to_p01(0.99, p10=0.9)
