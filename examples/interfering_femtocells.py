#!/usr/bin/env python
"""Interfering femtocells: greedy channel allocation in action.

Builds the paper's Section V-B scenario -- three FBSs whose coverage
areas form the interference chain 1 - 2 - 3 of Fig. 5, three CR users
each -- and walks through one slot of the greedy channel allocation
(Table III): which FBS won which channel, the marginal objective gains
``Delta_l``, and the eq. (23) upper bound certified by the run.

Run with:  python examples/interfering_femtocells.py
"""

import networkx as nx

from repro.core.bounds import theorem2_factor, tighter_upper_bound
from repro.experiments import interfering_fbs_scenario
from repro.sim import MonteCarloRunner, SimulationEngine


def main() -> None:
    config = interfering_fbs_scenario(n_gops=2, seed=11)
    graph = config.topology.interference_graph
    print("Interference graph (Fig. 5):",
          sorted(graph.nodes), "edges", sorted(graph.edges))
    print(f"D_max = {max(d for _n, d in graph.degree())} "
          f"=> Theorem 2 guarantees >= {theorem2_factor(graph):.2f} of optimum\n")

    engine = SimulationEngine(config, record_slots=True)
    record = engine.step()
    print(f"Slot 1: available channels A(t) = {record.access.available_channels.tolist()}")
    print("Greedy allocation (Table III):")
    for step_index, step in enumerate(record.greedy_trace.steps, start=1):
        print(f"  step {step_index}: channel {step.channel} -> FBS {step.fbs_id} "
              f"(Delta = {step.gain:.4f}, degree D(l) = {step.degree})")
    for fbs_id, channels in sorted(record.channel_allocation.items()):
        g_i = record.problem.expected_channels[fbs_id]
        print(f"  FBS {fbs_id}: channels {sorted(channels)} (G_i = {g_i:.2f})")
    print(f"  slot objective Q = {record.greedy_trace.q_final:.4f}, "
          f"eq. (23) bound = {tighter_upper_bound(record.greedy_trace):.4f}")

    # Sanity: adjacent FBSs never share a channel.
    for i, j in graph.edges:
        shared = record.channel_allocation[i] & record.channel_allocation[j]
        assert not shared, f"interference violation on {shared}"

    print("\nAverage quality over 5 runs (proposed vs heuristics):")
    for scheme in ("proposed-fast", "heuristic1", "heuristic2"):
        summary = MonteCarloRunner(config.with_scheme(scheme), n_runs=5).summary()
        line = f"  {scheme:14s} mean PSNR {summary.mean_psnr}"
        if scheme == "proposed-fast":
            line += f"   upper bound {summary.upper_bound_psnr.mean:.2f} dB"
        print(line)


if __name__ == "__main__":
    main()
