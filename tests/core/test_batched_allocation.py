"""Differential contract of the cross-replication batched allocation.

The stacked kernel (:mod:`repro.core.batch`) and the lockstep driver
(:mod:`repro.sim.lockstep`) exist purely for speed: every request they
answer must be *bit-identical* to the scalar solver, and every campaign
they batch must serialise byte-for-byte like the per-replication path.
These tests pin that contract at three levels -- individual solve
requests (fuzzed shapes, warm starts, ragged budgets, stall exits), the
order-sensitive reduction helper, and whole campaigns (batched vs
unbatched, serial vs pooled, store on vs off).
"""

import json

import numpy as np
import pytest

from repro.core import caches
from repro.core.accel import use_acceleration
from repro.core.batch import (
    SolveRequest,
    _masked_row_sums,
    answer_request,
    drive,
    fast_solve_iter,
    fast_solve_warm_iter,
    solve_requests,
    use_batching,
)
from repro.core.dual import fast_solve, fast_solve_warm
from repro.exec.plan import plan_campaign
from repro.experiments.scenarios import single_fbs_scenario
from repro.sim.checkpoint import run_metrics_to_dict
from repro.sim.lockstep import MAX_BATCH, plan_batch_groups
from repro.sim.runner import MonteCarloRunner
from tests.conftest import make_problem, random_problem


def assert_same_solution(scalar, batched):
    """Full bit-level equality of two DualSolutions."""
    assert batched.allocation.objective == scalar.allocation.objective
    assert batched.allocation.rho_mbs == scalar.allocation.rho_mbs
    assert batched.allocation.rho_fbs == scalar.allocation.rho_fbs
    assert batched.allocation.mbs_user_ids == scalar.allocation.mbs_user_ids
    assert batched.multipliers == scalar.multipliers
    assert batched.iterations == scalar.iterations
    assert batched.converged == scalar.converged


def random_request(rng):
    """A random problem with occasionally non-default solver parameters."""
    params = {}
    if rng.random() < 0.5:
        params["max_iterations"] = int(rng.integers(1, 500))
    if rng.random() < 0.3:
        params["step_size"] = float(rng.choice([0.005, 0.02, 0.1]))
    if rng.random() < 0.3:
        params["threshold"] = float(rng.choice([1e-4, 1e-5, 1e-7]))
    if rng.random() < 0.3:
        params["decay_after"] = int(rng.integers(50, 400))
    return SolveRequest(problem=random_problem(rng), **params)


class TestRequestDifferential:
    """solve_requests vs answer_request, request by request."""

    def test_empty_batch(self):
        assert solve_requests([]) == []

    def test_single_request_matches_scalar(self):
        # Width 1 takes the scalar-continuation path end to end.
        request = SolveRequest(problem=make_problem(4, n_fbss=2, seed=3))
        with use_acceleration(True):
            assert_same_solution(answer_request(request),
                                 solve_requests([request])[0])

    def test_fuzzed_mixed_batches_match_scalar(self):
        rng = np.random.default_rng(20260807)
        requests = [random_request(rng) for _ in range(60)]
        with use_acceleration(True):
            scalar = [answer_request(r) for r in requests]
            index = 0
            while index < len(requests):
                # Widths below, at, and above the stacked-width cutoff;
                # ragged shapes inside one call exercise the grouping.
                width = int(rng.choice([1, 2, 3, 5, 8]))
                chunk = requests[index:index + width]
                for expected, got in zip(scalar[index:index + width],
                                         solve_requests(chunk)):
                    assert_same_solution(expected, got)
                index += width

    def test_warm_started_requests_match_scalar(self):
        rng = np.random.default_rng(11)
        problems = [random_problem(rng) for _ in range(8)]
        with use_acceleration(True):
            cold = [answer_request(SolveRequest(problem=p)) for p in problems]
            warm = [SolveRequest(problem=p,
                                 initial_multipliers=dict(c.multipliers))
                    for p, c in zip(problems, cold)]
            scalar = [answer_request(r) for r in warm]
            for expected, got in zip(scalar, solve_requests(warm)):
                assert_same_solution(expected, got)

    def test_ragged_iteration_budgets_freeze_bit_exactly(self):
        # Same problem, wildly different budgets, one stack: a member
        # frozen at iteration 1 must return the same iterate whether its
        # batch mates run 1 or 400 more rounds (masked compression).
        problem = make_problem(5, n_fbss=2, seed=13)
        requests = [SolveRequest(problem=problem, max_iterations=budget)
                    for budget in (3, 17, 400, 60, 1)]
        with use_acceleration(True):
            scalar = [answer_request(r) for r in requests]
            for expected, got in zip(scalar, solve_requests(requests)):
                assert_same_solution(expected, got)

    def test_stall_and_budget_exits_match_scalar(self):
        # An unreachable threshold forces the budget exit and, past
        # decay_after, the limit-cycle stall checks -- the per-member
        # slow path of the stacked loop.
        rng = np.random.default_rng(7)
        requests = [SolveRequest(problem=random_problem(rng),
                                 max_iterations=650, threshold=1e-14,
                                 step_size=0.5, decay_after=100)
                    for _ in range(6)]
        with use_acceleration(True):
            scalar = [answer_request(r) for r in requests]
            batched = solve_requests(requests)
        assert any(not s.converged for s in scalar)
        for expected, got in zip(scalar, batched):
            assert_same_solution(expected, got)

    def test_degenerate_single_user_slots(self):
        rng = np.random.default_rng(5)
        requests = [SolveRequest(problem=random_problem(rng, max_users=1,
                                                        max_fbss=1))
                    for _ in range(5)]
        with use_acceleration(True):
            scalar = [answer_request(r) for r in requests]
            for expected, got in zip(scalar, solve_requests(requests)):
                assert_same_solution(expected, got)


class TestMaskedRowSums:
    def test_matches_per_row_compressed_sum(self):
        # Exactness is association-sensitive: the helper must replay
        # numpy's sequential (k < 8) and unrolled-by-8 (k >= 8) summation
        # orders, across the n >= 16 fallback boundary too.
        rng = np.random.default_rng(42)
        for _ in range(300):
            b = int(rng.integers(1, 12))
            n = int(rng.integers(1, 20))
            scale = float(rng.choice([1.0, 1e-8, 1e8]))
            values = rng.random((b, n)) * scale
            mask = rng.random((b, n)) < rng.random()
            expected = np.array([values[row, mask[row]].sum()
                                 for row in range(b)])
            assert _masked_row_sums(values, mask).tobytes() \
                == expected.tobytes()

    def test_dense_masks_hit_the_combine_tree(self):
        rng = np.random.default_rng(8)
        for n in range(8, 16):
            values = rng.random((6, n))
            mask = np.ones((6, n), dtype=bool)
            mask[0, 0] = False  # one row in the sequential regime anyway
            expected = np.array([values[row, mask[row]].sum()
                                 for row in range(6)])
            assert _masked_row_sums(values, mask).tobytes() \
                == expected.tobytes()


class TestSolveGenerators:
    def test_drive_fast_solve_iter_matches_inline(self):
        problem = make_problem(4, seed=9)
        with use_acceleration(True):
            expected = fast_solve(problem)
            got = drive(fast_solve_iter(problem))
        assert got == expected

    def test_drive_without_polish(self):
        problem = make_problem(3, seed=2)
        with use_acceleration(True):
            expected = fast_solve(problem, polish=False)
            got = drive(fast_solve_iter(problem, polish=False))
        assert got == expected

    def test_warm_iter_round_trips_the_store(self):
        problem = make_problem(3, seed=4)
        with use_acceleration(True):
            store_gen, store_inline = {}, {}
            got = drive(fast_solve_warm_iter(problem, store_gen))
            expected = fast_solve_warm(problem, store_inline)
        assert got == expected
        assert store_gen == store_inline
        assert store_gen  # the answered multipliers were written back


class TestPlanBatchGroups:
    def _cells(self, n_runs, **overrides):
        config = single_fbs_scenario(n_gops=1,
                                     seed=overrides.pop("seed", 31),
                                     scheme=overrides.pop("scheme",
                                                          "proposed-fast"),
                                     **overrides)
        return plan_campaign(config, n_runs).cells

    def test_replications_of_one_config_share_a_group(self):
        assert [len(g) for g in plan_batch_groups(self._cells(4))] == [4]

    def test_groups_cap_at_max_batch(self):
        groups = plan_batch_groups(self._cells(MAX_BATCH + 3))
        assert [len(g) for g in groups] == [MAX_BATCH, 3]

    def test_unbatchable_scheme_stays_singleton(self):
        groups = plan_batch_groups(self._cells(3, scheme="heuristic1"))
        assert [len(g) for g in groups] == [1, 1, 1]

    def test_seedless_config_stays_singleton(self):
        groups = plan_batch_groups(self._cells(3, seed=None))
        assert [len(g) for g in groups] == [1, 1, 1]

    def test_distinct_config_objects_do_not_merge(self):
        # Equal values, different objects: grouping is by identity (the
        # planner shares one config across a campaign's replications).
        cells = list(self._cells(2)) + list(self._cells(2))
        assert [len(g) for g in plan_batch_groups(cells)] == [2, 2]

    def test_fault_plan_stays_singleton(self):
        # Fault injection hooks are stateful; their cells never batch.
        cells = self._cells(3)
        faulted = cells[0].config.replace(fault_plan=object())
        from dataclasses import replace
        cells = [replace(cell, config=faulted) for cell in cells]
        assert [len(g) for g in plan_batch_groups(cells)] == [1, 1, 1]

    def test_plan_order_is_preserved(self):
        cells = list(self._cells(3, scheme="heuristic1")) \
            + list(self._cells(4))
        groups = plan_batch_groups(cells)
        assert [id(cell) for group in groups for cell in group] \
            == [id(cell) for cell in cells]


def _fingerprint(runs):
    return json.dumps([run_metrics_to_dict(run) for run in runs],
                      sort_keys=True)


def _campaign(config, *, batched, token, n_runs=3):
    with use_acceleration(True):
        caches.scope_to(("batched-diff", token))
        with use_batching(batched):
            return MonteCarloRunner(config, n_runs=n_runs).run_all()


class TestCampaignDifferential:
    def test_batched_campaign_bit_identical_to_unbatched(self):
        config = single_fbs_scenario(n_gops=1, seed=1234,
                                     scheme="proposed-fast")
        base = _campaign(config, batched=False, token="unbatched")
        batched = _campaign(config, batched=True, token="batched")
        assert _fingerprint(base) == _fingerprint(batched)

    def test_kernel_refusal_escapes_bit_identically(self, monkeypatch):
        # When the stacked kernel refuses a round, the lockstep driver
        # answers each member with the scalar solver instead; the
        # campaign must not change by a byte.
        from repro.sim import lockstep
        from repro.utils.errors import ReproError

        config = single_fbs_scenario(n_gops=1, seed=56,
                                     scheme="proposed-fast")
        base = _campaign(config, batched=False, token="escape-base")

        def refuse(requests):
            raise ReproError("stacked kernel refused the round")

        monkeypatch.setattr(lockstep, "solve_requests", refuse)
        refused = _campaign(config, batched=True, token="escape-refused")
        assert _fingerprint(base) == _fingerprint(refused)

    def test_solver_counters_match_unbatched(self):
        # The kernel books its solver metrics on each member's own
        # registry; per-run observability snapshots must be identical to
        # the per-replication path's.
        from repro.obs.metrics import (
            enable_metrics,
            reset_metrics,
            scoped_registry,
        )

        config = single_fbs_scenario(n_gops=1, seed=90,
                                     scheme="proposed-fast")
        enable_metrics(True)
        try:
            with scoped_registry():
                base = _campaign(config, batched=False, token="obs-unbatched")
            with scoped_registry():
                batched = _campaign(config, batched=True, token="obs-batched")
        finally:
            enable_metrics(False)
            reset_metrics()
        for expected, got in zip(base, batched):
            assert expected.obs_snapshot == got.obs_snapshot
            assert any("repro_solver_solves_total" in key
                       for key in got.obs_snapshot.get("counters", {}))

    def test_monkeypatched_runner_stands_down(self, monkeypatch):
        # Tests that stub the execution seams must keep seeing their
        # stubs: lockstep stands down whenever execute_run or
        # _execute_cell has been replaced.
        from repro.exec import executor as executor_mod
        from repro.sim import runner as runner_mod

        assert not executor_mod._interception_active()
        baseline = runner_mod.execute_run
        monkeypatch.setattr(runner_mod, "execute_run",
                            lambda *args, **kwargs: baseline(*args, **kwargs))
        assert executor_mod._interception_active()
        config = single_fbs_scenario(n_gops=1, seed=17,
                                     scheme="proposed-fast")
        from repro.obs.metrics import (
            enable_metrics,
            reset_metrics,
            scoped_registry,
        )

        enable_metrics(True)
        try:
            with scoped_registry() as registry:
                _campaign(config, batched=True, token="intercepted", n_runs=2)
                counters = registry.counters()
        finally:
            enable_metrics(False)
            reset_metrics()
        assert counters.get("repro_lockstep_groups_total", 0) == 0


@pytest.mark.parametrize("store_on", [True, False])
def test_pool_jobs_invariant_with_batching(tmp_path, monkeypatch, store_on):
    """--jobs 1 and --jobs 2 serialise identically, store on and off.

    Worker pools receive pickled cell chunks; unpickling preserves the
    config sharing inside a chunk, so pool workers form (smaller)
    lockstep groups of their own.  The serialised sweep must not depend
    on any of it.
    """
    from repro.experiments.results_io import sweep_to_dict
    from repro.sim.runner import sweep
    from repro.store.scenario_store import ENV_STORE, reset_default_store

    if not store_on:
        monkeypatch.setenv(ENV_STORE, "0")
    reset_default_store()
    try:
        config = single_fbs_scenario(n_gops=1, seed=77,
                                     scheme="proposed-fast")
        serialised = {}
        for jobs in (1, 2):
            checkpoint = tmp_path / f"jobs{jobs}-store{store_on}.jsonl"
            with use_acceleration(True), use_batching(True):
                result = sweep(config, "n_channels", [6], ["proposed-fast"],
                               n_runs=3, jobs=jobs,
                               checkpoint_path=str(checkpoint))
            serialised[jobs] = json.dumps(sweep_to_dict(result),
                                          sort_keys=True)
        assert serialised[1] == serialised[2]
    finally:
        reset_default_store()
