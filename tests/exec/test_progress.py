"""Tests for per-cell timing telemetry and the timing report."""

import io

import pytest

from repro.exec.executor import CellOutcome, SerialExecutor
from repro.exec.plan import Cell, plan_campaign
from repro.exec.progress import (
    CellTiming,
    ProgressTracker,
    TimingReport,
    parse_progress_line,
)
from repro.sim.metrics import FailedRun


def make_outcome(config, *, scheme="heuristic1", run_index=0, seconds=0.5,
                 failed=False):
    cell = Cell(scheme=scheme, point_index=0, run_index=run_index,
                config=config.with_scheme(scheme))
    if failed:
        result = FailedRun(run_index=run_index, error_type="NumericalError",
                           error="injected", attempts=2)
    else:
        result = next(iter(SerialExecutor().run([cell]))).result
    return CellOutcome(cell=cell, result=result, seconds=seconds)


class TestProgressTracker:
    def test_counts_and_report(self, single_config):
        tracker = ProgressTracker()
        tracker.begin(3, cached=2)
        tracker.observe(make_outcome(single_config, run_index=0, seconds=0.2))
        tracker.observe(make_outcome(single_config, run_index=1, seconds=0.3,
                                     failed=True))
        report = tracker.report()
        assert report.n_cells == 2
        assert report.n_failed == 1
        assert report.n_cached == 2
        assert abs(report.busy_seconds - 0.5) < 1e-12

    def test_live_lines_reach_the_stream(self, single_config):
        stream = io.StringIO()
        tracker = ProgressTracker(stream=stream, label="t")
        tracker.begin(2, cached=1)
        tracker.observe(make_outcome(single_config, run_index=0))
        tracker.observe(make_outcome(single_config, run_index=1, failed=True))
        text = stream.getvalue()
        assert "resuming: 1 cell(s)" in text
        assert "[t] 1/2 heuristic1|0|0 ok" in text
        assert "[t] 2/2 heuristic1|0|1 FAILED" in text

    def test_silent_without_stream(self, single_config):
        tracker = ProgressTracker()
        tracker.observe(make_outcome(single_config))  # must not raise
        assert tracker.report().n_cells == 1

    def test_duck_typing_contract_with_sweep(self, single_config, tmp_path):
        """sweep(progress=...) must feed the tracker every executed cell."""
        from repro.sim.runner import sweep
        tracker = ProgressTracker()
        sweep(single_config, "n_channels", [4], ["heuristic1"], n_runs=2,
              progress=tracker)
        report = tracker.report()
        assert report.n_cells == 2
        assert report.n_cached == 0

    def test_resumed_cells_counted_as_cached(self, single_config, tmp_path):
        from repro.sim.runner import sweep
        path = tmp_path / "sweep.ckpt"
        sweep(single_config, "n_channels", [4], ["heuristic1"], n_runs=2,
              checkpoint_path=path)
        tracker = ProgressTracker()
        sweep(single_config, "n_channels", [4], ["heuristic1"], n_runs=2,
              checkpoint_path=path, progress=tracker)
        report = tracker.report()
        assert report.n_cells == 0
        assert report.n_cached == 2

    def test_fully_cached_resume_reports_real_wall_clock(self):
        """Regression: zero executed cells reported 0.00 s wall / 0.0x.

        With nothing observed ``self._last`` never advances, so the wall
        clock collapsed to zero; it must instead run to ``report()`` time.
        """
        import time
        tracker = ProgressTracker()
        tracker.begin(0, cached=6)
        time.sleep(0.01)
        report = tracker.report()
        assert report.n_cells == 0
        assert report.n_cached == 6
        assert report.wall_seconds >= 0.01
        assert report.effective_parallelism == 0.0  # no busy time, no crash
        text = report.format()
        assert "6 resumed from checkpoint" in text
        assert "0.00 s\n" not in text.split("wall clock")[1].split("\n")[0]

    def test_phase_seconds_aggregated_across_cells(self, single_config):
        tracker = ProgressTracker()
        tracker.observe(make_outcome(single_config, run_index=0))
        tracker.observe(make_outcome(single_config, run_index=1))
        # A failed cell carries no RunMetrics, hence no phase telemetry.
        tracker.observe(make_outcome(single_config, run_index=2, failed=True))
        report = tracker.report()
        assert set(report.phase_seconds) == {
            "sensing", "access", "allocation", "transmission"}
        assert all(seconds >= 0.0 for seconds in report.phase_seconds.values())
        assert "per phase" in report.format()


class TestTimingReport:
    def _report(self):
        timings = (
            CellTiming(key="a|0|0", scheme="a", point_index=0, run_index=0,
                       seconds=1.0, ok=True),
            CellTiming(key="a|0|1", scheme="a", point_index=0, run_index=1,
                       seconds=3.0, ok=False),
            CellTiming(key="b|0|0", scheme="b", point_index=0, run_index=0,
                       seconds=2.0, ok=True),
        )
        return TimingReport(timings=timings, wall_seconds=2.0, n_cached=4)

    def test_aggregates(self):
        report = self._report()
        assert report.n_cells == 3
        assert report.n_failed == 1
        assert report.busy_seconds == 6.0
        assert report.effective_parallelism == 3.0
        assert report.per_scheme_seconds() == {"a": 4.0, "b": 2.0}
        assert [t.key for t in report.slowest(2)] == ["a|0|1", "b|0|0"]

    def test_format_mentions_everything(self):
        text = self._report().format()
        assert "3" in text and "1 failed" in text
        assert "4 resumed from checkpoint" in text
        assert "3.00x effective parallelism" in text
        assert "a|0|1" in text  # slowest cell named

    def test_zero_wall_clock_is_safe(self):
        report = TimingReport(timings=(), wall_seconds=0.0)
        assert report.effective_parallelism == 0.0
        assert "wall clock" in report.format()


class TestParseProgressLine:
    """The service tails job logs through this parser; it must stay in
    lock-step with the tracker's narration format."""

    def test_cell_line(self):
        event = parse_progress_line("[job-0001] 3/15 proposed|2|0 ok 0.41s\n")
        assert event == {"kind": "cell", "label": "job-0001", "done": 3,
                         "total": 15, "key": "proposed|2|0", "ok": True,
                         "seconds": 0.41}

    def test_failed_cell_line(self):
        event = parse_progress_line("[t] 2/2 heuristic1|0|1 FAILED 1.00s")
        assert event["ok"] is False

    def test_unknown_total_parses_as_none(self):
        event = parse_progress_line("[t] 4/? heuristic1|0|0 ok 0.10s")
        assert event["total"] is None

    def test_resume_line(self):
        event = parse_progress_line(
            "[fig4b] resuming: 12 cell(s) already checkpointed, 18 to run")
        assert event == {"kind": "resume", "label": "fig4b", "cached": 12,
                         "total": 18}

    @pytest.mark.parametrize("noise", [
        "", "\n", "plain engine logging",
        "[t] resuming badly", "[t] 3/x scheme ok 0.1s",
        "  [t] 1/2 scheme|0|0 ok 0.10s",  # leading junk: not a tracker line
    ])
    def test_noise_yields_none(self, noise):
        assert parse_progress_line(noise) is None

    def test_round_trips_the_trackers_own_narration(self, single_config):
        stream = io.StringIO()
        tracker = ProgressTracker(stream=stream, label="rt")
        tracker.begin(2, cached=1)
        tracker.observe(make_outcome(single_config, run_index=0))
        tracker.observe(make_outcome(single_config, run_index=1, failed=True))
        events = [parse_progress_line(line)
                  for line in stream.getvalue().splitlines()]
        assert [e["kind"] for e in events if e] == ["resume", "cell", "cell"]
        resume, ok_cell, failed_cell = events
        assert resume["cached"] == 1
        assert ok_cell["ok"] is True and ok_cell["done"] == 1
        assert failed_cell["ok"] is False and failed_cell["total"] == 2
