"""The ``repro.*`` logger hierarchy.

Before this module existed the only narration the system produced was
ad-hoc writes to whatever stream the caller handed in (the progress
tracker) -- there was not a single stdlib ``logging`` call in ``src/``.
Every subsystem now logs through a named child of the ``repro`` root
logger (``repro.sim.runner``, ``repro.exec.executor``, ...), so an
operator can turn on exactly the narration they need with standard
``logging`` configuration, and embedders inherit the usual contract: the
library is silent by default (a ``NullHandler`` on the root), handlers
are only installed by the explicit :func:`configure_logging` call the
CLI's ``--log-level`` flag maps to.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO, Union

#: Name of the hierarchy root every repro logger descends from.
ROOT_LOGGER = "repro"

#: The handler installed by :func:`configure_logging` (one at a time).
_handler: Optional[logging.Handler] = None

# Library default: silent unless the embedding application (or
# configure_logging) says otherwise.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger in the ``repro.*`` hierarchy.

    ``name`` is the dotted path below the root (``"sim.runner"`` gives
    ``repro.sim.runner``); a name already rooted at ``repro`` is used
    as-is, so callers may pass ``__name__`` directly.
    """
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def resolve_level(level: Union[int, str]) -> int:
    """Map a ``--log-level`` value (name or number) to a logging level.

    Raises
    ------
    ValueError
        For a name the stdlib does not know.
    """
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def configure_logging(level: Union[int, str] = "info",
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Install a stream handler on the ``repro`` root logger.

    Idempotent: calling again replaces the previously installed handler
    (never stacks a second one), so tests and long-lived sessions can
    reconfigure freely.  Returns the root logger.
    """
    global _handler
    root = logging.getLogger(ROOT_LOGGER)
    if _handler is not None:
        root.removeHandler(_handler)
    _handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    _handler.setFormatter(logging.Formatter(
        "%(asctime)s %(levelname)-7s %(name)s: %(message)s"))
    root.addHandler(_handler)
    root.setLevel(resolve_level(level))
    return root


def reset_logging() -> None:
    """Remove the handler installed by :func:`configure_logging`."""
    global _handler
    root = logging.getLogger(ROOT_LOGGER)
    if _handler is not None:
        root.removeHandler(_handler)
        _handler = None
    root.setLevel(logging.NOTSET)
