"""repro: MGS scalable video over femtocell cognitive radio networks.

A from-scratch reproduction of Hu & Mao, "Resource Allocation for Medium
Grain Scalable Videos over Femtocell Cognitive Radio Networks"
(ICDCS 2011).  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the reproduced tables/figures.

Public API highlights
---------------------
Core algorithms
    :class:`repro.core.DualDecompositionSolver` (Tables I/II),
    :class:`repro.core.GreedyChannelAllocator` (Table III),
    :func:`repro.core.tighter_upper_bound` (eq. 23),
    the comparison heuristics, and the exact reference oracle.
Substrates
    :mod:`repro.spectrum` (Markov occupancy), :mod:`repro.sensing`
    (fusion eqs. 2-4, access policy eqs. 5-7), :mod:`repro.phy`
    (block fading, eq. 8), :mod:`repro.video` (MGS model, eq. 9),
    :mod:`repro.net` (topology + interference graphs).
Simulation
    :class:`repro.sim.SimulationEngine`, :class:`repro.sim.MonteCarloRunner`,
    and the scenario builders in :mod:`repro.experiments`.
"""

__version__ = "1.0.0"

from repro.core import (
    Allocation,
    DualDecompositionSolver,
    GreedyChannelAllocator,
    SlotProblem,
    UserDemand,
    fast_solve,
    get_allocator,
    theorem2_factor,
    tighter_upper_bound,
)
from repro.net import build_interference_graph, build_topology
from repro.sensing import AccessPolicy, SpectrumSensor, fuse_posterior
from repro.sensing.belief import ChannelBeliefTracker
from repro.sim import MonteCarloRunner, ScenarioConfig, SimulationEngine
from repro.spectrum import OccupancyChain, Spectrum
from repro.video import get_sequence

__all__ = [
    "Allocation",
    "AccessPolicy",
    "ChannelBeliefTracker",
    "DualDecompositionSolver",
    "GreedyChannelAllocator",
    "MonteCarloRunner",
    "OccupancyChain",
    "ScenarioConfig",
    "SimulationEngine",
    "SlotProblem",
    "Spectrum",
    "SpectrumSensor",
    "UserDemand",
    "__version__",
    "build_interference_graph",
    "build_topology",
    "fast_solve",
    "fuse_posterior",
    "get_allocator",
    "get_sequence",
    "theorem2_factor",
    "tighter_upper_bound",
]
