"""The ISSUE's acceptance test: kill the server mid-job, restart, and
the job resumes from its checkpoint to a byte-identical result.

Driven at the JobManager level (the HTTP layer adds nothing to the
lifecycle): manager A runs a fig4b sweep job until the checkpoint holds
a few cells, is killed SIGKILL-style (records left stale, exactly like
a power cut), and manager B on the same workspace must recover the job,
resume it from the checkpoint, and finish with the same bytes a direct
CLI run produces at a different ``--jobs`` count.
"""

import time

import pytest

from repro import cli
from repro.serve.jobs import JobManager, TERMINAL_STATES
from repro.store.workspace import FileWorkspace

SPEC = {"command": "fig4b", "runs": 2, "gops": 1, "jobs": 2}
WAIT = 300.0


def wait_until(predicate, timeout=WAIT, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not met in time")


@pytest.fixture
def crashed(tmp_path):
    """A workspace holding one job killed mid-sweep, plus its id."""
    workspace = tmp_path / "ws"
    first_life = JobManager(workspace, job_workers=1)
    first_life.start()
    record, _ = first_life.submit(SPEC)
    job_id = record["id"]
    checkpoint = workspace / record["artifacts"]["checkpoint"]

    def cells_checkpointed():
        if not checkpoint.exists():
            return 0
        return sum(1 for line in checkpoint.read_text().splitlines()
                   if line.strip())

    wait_until(lambda: cells_checkpointed() >= 2)
    first_life.kill()
    yield workspace, job_id
    # (second-life managers are stopped by the tests themselves)


class TestCrashRecovery:
    def test_restart_resumes_from_checkpoint_byte_identically(
            self, crashed, tmp_path):
        workspace, job_id = crashed
        stale = JobManager(workspace).get(job_id)
        # The crash left the record exactly as a power cut would.
        assert stale["state"] in ("building", "running")

        second_life = JobManager(workspace, job_workers=1)
        resumed = second_life.start()
        assert job_id in resumed
        try:
            final = wait_until(
                lambda: (second_life.get(job_id)
                         if second_life.get(job_id)["state"]
                         in TERMINAL_STATES else None))
        finally:
            second_life.stop(graceful=False, timeout=30)
        assert final["state"] == "succeeded"
        assert final["exit_code"] == 0
        assert final["resumed"] >= 1

        # The re-run resumed the checkpoint rather than starting over.
        events, _ = second_life.events(job_id)
        resumes = [e for e in events if e["kind"] == "resume"]
        assert resumes and resumes[-1]["cached"] >= 2

        # Byte identity against a direct CLI run at a different --jobs.
        direct = tmp_path / "direct.json"
        assert cli.main(["fig4b", "--runs", "2", "--gops", "1",
                         "--jobs", "1", "--output", str(direct)]) == 0
        served = workspace / final["artifacts"]["result"]
        assert served.read_bytes() == direct.read_bytes()

    def test_gc_protects_the_interrupted_jobs_inputs(self, crashed):
        workspace, job_id = crashed
        ws = FileWorkspace(workspace)
        record = ws.job_records()[job_id]
        assert record["scenario_hashes"]
        report = ws.gc(dry_run=True)
        assert job_id in report["active_jobs"]
        # Every scenario the job planned survives while it is active...
        assert not set(record["scenario_hashes"]) \
            & set(report["removed_scenarios"])
        # ...but once the job record turns terminal AND its checkpoint
        # is gone (a live checkpoint independently protects its builds,
        # since it could still be resumed), gc may reclaim them.
        record["state"] = "cancelled"
        ws.save_job(record)
        (workspace / record["artifacts"]["checkpoint"]).unlink()
        report = ws.gc(dry_run=True)
        assert job_id not in report["active_jobs"]
        built = set(record["scenario_hashes"]) & set(ws.scenario_refs())
        assert built <= set(report["removed_scenarios"])
