"""FileWorkspace: layout, run registry, inspect, and gc protection."""

import json

import pytest

from repro.experiments.scenarios import single_fbs_scenario
from repro.sim.build import build_scenario
from repro.store.confighash import scenario_hash
from repro.store.workspace import SUBDIRS, FileWorkspace
from repro.utils.errors import ConfigurationError


@pytest.fixture
def workspace(tmp_path):
    return FileWorkspace(tmp_path / "ws")


@pytest.fixture
def built():
    config = single_fbs_scenario(n_gops=1, seed=20260807)
    return build_scenario(config, scenario_hash=scenario_hash(config))


class TestLayout:
    def test_subdirectories_created_eagerly(self, workspace):
        for sub in SUBDIRS:
            assert (workspace.root / sub).is_dir()

    def test_path_helpers_land_in_their_directories(self, workspace):
        assert workspace.results_path("a.json").parent.name == "results"
        assert workspace.checkpoint_path("a.jsonl").parent.name == "checkpoints"
        assert workspace.trace_path("a.jsonl").parent.name == "traces"
        assert workspace.manifest_path("a.json").parent.name == "manifests"
        assert workspace.scenario_path("abc").name == "abc.json"


class TestScenarioArtifacts:
    def test_save_load_round_trip(self, workspace, built):
        workspace.save_scenario(built)
        loaded = workspace.load_scenario(built.scenario_hash)
        assert loaded.to_payload() == built.to_payload()
        assert workspace.scenario_refs() == [built.scenario_hash]

    def test_save_is_idempotent(self, workspace, built):
        path = workspace.save_scenario(built)
        before = path.stat().st_mtime_ns
        workspace.save_scenario(built)
        assert path.stat().st_mtime_ns == before

    def test_save_requires_a_hash(self, workspace, built):
        import dataclasses
        unhashed = dataclasses.replace(built, scenario_hash="")
        with pytest.raises(ConfigurationError):
            workspace.save_scenario(unhashed)

    def test_load_missing_returns_none(self, workspace):
        assert workspace.load_scenario("no-such-hash") is None

    def test_load_corrupt_returns_none(self, workspace, built):
        workspace.scenario_path("bad").write_text("{truncated")
        assert workspace.load_scenario("bad") is None
        wrong_version = dict(built.to_payload(), format_version=999)
        workspace.scenario_path("v999").write_text(json.dumps(wrong_version))
        assert workspace.load_scenario("v999") is None


class TestRunRegistry:
    def test_register_and_merge(self, workspace):
        workspace.register_run("fig4b", parameter="n_channels",
                               scenario_hashes=["aa", "bb"],
                               checkpoint=workspace.checkpoint_path("c.jsonl"))
        entry = workspace.register_run(
            "fig4b", scenario_hashes=["bb", "cc"],
            results=[workspace.results_path("fig4b.json")], skipped=None)
        assert entry["parameter"] == "n_channels"
        assert entry["scenario_hashes"] == ["aa", "bb", "cc"]
        assert entry["results"] == ["results/fig4b.json"]
        assert entry["checkpoint"] == "checkpoints/c.jsonl"
        assert "skipped" not in entry

    def test_paths_outside_root_stay_absolute(self, workspace, tmp_path):
        elsewhere = tmp_path / "elsewhere.json"
        entry = workspace.register_run("run", results=[elsewhere])
        assert entry["results"] == [str(elsewhere)]

    def test_index_survives_corruption(self, workspace):
        workspace.register_run("run", parameter="p")
        workspace.index_path.write_text("{broken")
        assert workspace.entries() == {}

    def test_inspect_reports_file_liveness(self, workspace, built):
        workspace.save_scenario(built)
        checkpoint = workspace.checkpoint_path("run.jsonl")
        checkpoint.write_text("{}\n")
        workspace.register_run("run", checkpoint=checkpoint,
                               scenario_hashes=[built.scenario_hash],
                               results=[workspace.results_path("gone.json")])
        report = workspace.inspect("run")
        files = report["files"]
        assert files["checkpoints/run.jsonl"] is True
        assert files["results/gone.json"] is False
        assert files[f"scenarios/{built.scenario_hash}.json"] is True

    def test_inspect_unknown_run_raises(self, workspace):
        workspace.register_run("known", parameter="p")
        with pytest.raises(ConfigurationError, match="known"):
            workspace.inspect("unknown")


class TestGc:
    def test_live_checkpoint_protects_scenarios(self, workspace, built):
        workspace.save_scenario(built)
        checkpoint = workspace.checkpoint_path("run.jsonl")
        checkpoint.write_text("{}\n")
        workspace.register_run("run", checkpoint=checkpoint,
                               scenario_hashes=[built.scenario_hash])
        report = workspace.gc()
        assert report["removed_scenarios"] == []
        assert report["kept_scenarios"] == [built.scenario_hash]
        assert workspace.scenario_path(built.scenario_hash).exists()

    def test_dead_checkpoint_frees_scenarios(self, workspace, built):
        workspace.save_scenario(built)
        checkpoint = workspace.checkpoint_path("run.jsonl")
        checkpoint.write_text("{}\n")
        results = workspace.results_path("run.json")
        results.write_text("{}\n")
        workspace.register_run("run", checkpoint=checkpoint, results=[results],
                               scenario_hashes=[built.scenario_hash])
        checkpoint.unlink()
        report = workspace.gc()
        assert report["removed_scenarios"] == [built.scenario_hash]
        assert not workspace.scenario_path(built.scenario_hash).exists()
        # Results still live: the run entry survives.
        assert "run" in workspace.entries()

    def test_fully_dead_run_is_pruned(self, workspace):
        workspace.register_run(
            "stale", checkpoint=workspace.checkpoint_path("gone.jsonl"),
            results=[workspace.results_path("gone.json")])
        report = workspace.gc()
        assert report["pruned_runs"] == ["stale"]
        assert workspace.entries() == {}

    def test_dry_run_deletes_nothing(self, workspace, built):
        workspace.save_scenario(built)
        workspace.register_run(
            "stale", checkpoint=workspace.checkpoint_path("gone.jsonl"))
        report = workspace.gc(dry_run=True)
        assert report["dry_run"] is True
        assert report["removed_scenarios"] == [built.scenario_hash]
        assert workspace.scenario_path(built.scenario_hash).exists()
        assert "stale" in workspace.entries()

    def test_unregistered_scenarios_are_collected(self, workspace, built):
        workspace.save_scenario(built)
        report = workspace.gc()
        assert report["removed_scenarios"] == [built.scenario_hash]


class TestJobRecords:
    def job(self, job_id="job-0001", state="queued", **fields):
        return {"id": job_id, "state": state, "spec": {"command": "fig4b"},
                **fields}

    def test_save_and_list_round_trip(self, workspace):
        workspace.save_job(self.job())
        workspace.save_job(self.job("job-0002", state="running"))
        records = workspace.job_records()
        assert sorted(records) == ["job-0001", "job-0002"]
        assert records["job-0002"]["state"] == "running"
        assert workspace.job_path("job-0001").parent.name == "jobs"

    def test_save_requires_an_id(self, workspace):
        with pytest.raises(ConfigurationError, match="id"):
            workspace.save_job({"state": "queued"})

    def test_save_overwrites_atomically(self, workspace):
        workspace.save_job(self.job(state="queued"))
        workspace.save_job(self.job(state="succeeded"))
        assert workspace.job_records()["job-0001"]["state"] == "succeeded"

    def test_unreadable_records_are_skipped(self, workspace):
        workspace.save_job(self.job())
        (workspace.root / "jobs" / "torn.json").write_text("{broken")
        (workspace.root / "jobs" / "junk.json").write_text('"not a record"')
        assert sorted(workspace.job_records()) == ["job-0001"]


class TestGcJobProtection:
    def job(self, job_id, state, hashes):
        return {"id": job_id, "state": state, "scenario_hashes": hashes}

    def test_active_job_protects_its_scenarios(self, workspace, built):
        workspace.save_scenario(built)
        workspace.save_job(self.job("job-0001", "queued",
                                    [built.scenario_hash]))
        report = workspace.gc()
        assert report["active_jobs"] == ["job-0001"]
        assert report["kept_scenarios"] == [built.scenario_hash]
        assert workspace.scenario_path(built.scenario_hash).exists()

    def test_terminal_job_releases_its_scenarios(self, workspace, built):
        workspace.save_scenario(built)
        workspace.save_job(self.job("job-0001", "succeeded",
                                    [built.scenario_hash]))
        report = workspace.gc()
        assert report["active_jobs"] == []
        assert report["removed_scenarios"] == [built.scenario_hash]

    def test_active_jobs_run_entry_survives_dead_files(self, workspace):
        # A recovering job's registry entry must not be pruned while the
        # job is queued behind a dead checkpoint (it will recreate it).
        workspace.register_run(
            "job-0001", checkpoint=workspace.checkpoint_path("gone.jsonl"))
        workspace.save_job(self.job("job-0001", "queued", []))
        report = workspace.gc()
        assert report["pruned_runs"] == []
        assert "job-0001" in workspace.entries()
