"""Tests for the figure-regeneration experiment modules (tiny instances)."""

import numpy as np
import pytest

from repro.experiments.fig3 import Fig3Row, max_improvement_db, run_fig3
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4c
from repro.experiments.fig6 import run_fig6b, run_fig6c
from repro.experiments.report import format_convergence, format_fig3, format_sweep


class TestFig3:
    def test_row_structure(self):
        rows = run_fig3(n_runs=2, n_gops=1)
        assert [row.scheme for row in rows] == [
            "proposed-fast", "heuristic1", "heuristic2"]
        for row in rows:
            assert set(row.per_user_psnr) == {0, 1, 2}

    def test_max_improvement_positive(self):
        rows = run_fig3(n_runs=3, n_gops=2)
        assert max_improvement_db(rows) > 0.0

    def test_report_renders(self):
        rows = run_fig3(n_runs=2, n_gops=1)
        text = format_fig3(rows)
        assert "proposed-fast" in text
        assert "user 0" in text

    def test_max_improvement_requires_heuristics(self):
        rows = run_fig3(n_runs=1, n_gops=1, schemes=("proposed-fast",))
        with pytest.raises(ValueError):
            max_improvement_db(rows)


class TestFig4a:
    def test_trace_converges(self):
        result = run_fig4a(max_iterations=2000)
        assert result.converged
        assert result.trace.shape[1] == 2  # lambda_0 and lambda_1
        assert result.stations == [0, 1]
        # Later movement is smaller than early movement.
        early = np.abs(np.diff(result.trace[:10], axis=0)).sum()
        late = np.abs(np.diff(result.trace[-10:], axis=0)).sum()
        assert late < early

    def test_report_renders(self):
        result = run_fig4a()
        text = format_convergence(result.trace, result.stations, samples=5)
        assert "lambda_0" in text


class TestFig4Sweeps:
    def test_fig4b_schema(self):
        result = run_fig4b(n_runs=2, n_gops=1, channels=(4, 8),
                           schemes=("heuristic1",))
        assert result.values == [4, 8]
        assert len(result.series("heuristic1")) == 2

    def test_fig4b_more_channels_help(self):
        result = run_fig4b(n_runs=3, n_gops=2, channels=(4, 12),
                           schemes=("heuristic1",))
        series = result.series("heuristic1")
        assert series[1] > series[0]

    def test_fig4c_utilization_hurts(self):
        result = run_fig4c(n_runs=3, n_gops=2, utilizations=(0.3, 0.7),
                           schemes=("heuristic1",))
        series = result.series("heuristic1")
        assert series[0] > series[1]


class TestFig6Sweeps:
    def test_fig6b_schema(self):
        result = run_fig6b(n_runs=1, n_gops=1,
                           error_pairs=((0.3, 0.3),),
                           schemes=("heuristic1", "heuristic2"))
        assert len(result.values) == 1
        text = format_sweep(result, value_format="{0[0]}/{0[1]}")
        assert "heuristic1" in text

    def test_fig6c_bandwidth_helps(self):
        result = run_fig6c(n_runs=2, n_gops=1, bandwidths=(0.1, 0.5),
                           schemes=("heuristic1",))
        series = result.series("heuristic1")
        assert series[1] > series[0]

    def test_upper_bound_column_renders(self, interfering_config):
        from repro.sim.runner import sweep
        result = sweep(interfering_config, "n_channels", [4],
                       ["proposed-fast"], n_runs=1)
        text = format_sweep(result, upper_bound=True)
        assert "upper bound" in text
