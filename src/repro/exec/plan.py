"""Sweep planning: flatten Monte-Carlo campaigns into work items.

Planning happens entirely in the parent process: the ``configure`` hook
(often a lambda, which cannot cross a process boundary) is applied here,
so each resulting :class:`Cell` carries a fully *derived*
:class:`~repro.sim.config.ScenarioConfig` and nothing else needs to be
shipped to a worker.  Cell order is the historical serial loop order
(sweep point, then scheme, then replication), so checkpoint files written
by a serial run and a parallel run list cells identically.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.config import ScenarioConfig
from repro.utils.errors import ConfigurationError

#: Sweep "parameter" recorded for a single-scenario replication campaign.
CAMPAIGN_PARAMETER = "<campaign>"


def _scenario_ref(config: ScenarioConfig) -> Optional[str]:
    """The config's scenario hash, or ``None`` with the store disabled.

    Computed once per sweep point in the planning process; scheme and
    seed variations of the point share the hash by construction
    (:func:`~repro.store.confighash.scenario_hash` covers only the
    build-feeding fields).
    """
    from repro.store.confighash import scenario_hash
    from repro.store.scenario_store import store_enabled

    if not store_enabled():
        return None
    try:
        return scenario_hash(config)
    except TypeError:
        # No content identity (e.g. a test-double topology): the cell
        # builds its scenario inline, exactly as with the store off.
        return None


@dataclass(frozen=True)
class Cell:
    """One unit of Monte-Carlo work: a single replication of one scenario.

    Attributes
    ----------
    scheme:
        Allocation scheme of the cell (already applied to ``config``).
    point_index:
        Index of the sweep point the cell belongs to (0 for campaigns).
    run_index:
        Replication index; together with ``config.seed`` it determines
        the cell's entire random stream, so the cell's result is
        independent of where or when it executes.
    config:
        The fully derived scenario configuration (sweep value, scheme,
        root seed all applied).
    scenario_ref:
        The config's :func:`~repro.store.confighash.scenario_hash`,
        computed at planning time (``None`` when the scenario store is
        disabled).  Workers resolve it against their
        :class:`~repro.store.scenario_store.ScenarioStore` instead of
        rebuilding the scenario; computing it here also memoizes the
        expensive topology digest on the (shared, pickled-once)
        topology object, so a worker's own hash lookups are O(1).
    """

    scheme: str
    point_index: int
    run_index: int
    config: ScenarioConfig
    scenario_ref: Optional[str] = None

    @property
    def key(self) -> str:
        """Canonical checkpoint key of this cell."""
        return SweepCheckpoint.cell_key(self.scheme, self.point_index,
                                        self.run_index)


@dataclass(frozen=True)
class SweepPlan:
    """A fully flattened sweep: the grid identity plus its cells.

    Attributes
    ----------
    parameter, values, schemes, n_runs, seed:
        The sweep's identity (mirrors the checkpoint header fields).
    cells:
        Every ``(scheme, point, run)`` cell in deterministic order.
    """

    parameter: str
    values: Tuple[object, ...]
    schemes: Tuple[str, ...]
    n_runs: int
    seed: Optional[int]
    cells: Tuple[Cell, ...]

    @property
    def n_cells(self) -> int:
        """Total number of work items in the plan."""
        return len(self.cells)


def plan_sweep(base_config: ScenarioConfig, parameter: str,
               values: Sequence[object], schemes: Sequence[str], *,
               n_runs: int = 10,
               configure: Optional[Callable[[ScenarioConfig, object],
                                            ScenarioConfig]] = None
               ) -> SweepPlan:
    """Flatten a parameter sweep into a deterministic list of cells.

    The ``configure`` hook (or a plain ``replace(parameter=value)``) is
    applied *here*, in the planning process, so workers only ever see
    derived configs -- closures never need to be pickled.
    """
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    if not schemes:
        raise ConfigurationError("schemes must be non-empty")
    if len(values) == 0:  # len(), not truthiness: values may be an ndarray
        raise ConfigurationError("values must be non-empty")
    cells = []
    for point_index, value in enumerate(values):
        if configure is not None:
            point_config = configure(base_config, value)
        else:
            point_config = base_config.replace(**{parameter: value})
        ref = _scenario_ref(point_config)
        for scheme in schemes:
            scheme_config = point_config.with_scheme(scheme)
            for run_index in range(n_runs):
                cells.append(Cell(scheme=scheme, point_index=point_index,
                                  run_index=run_index, config=scheme_config,
                                  scenario_ref=ref))
    return SweepPlan(parameter=parameter, values=tuple(values),
                     schemes=tuple(schemes), n_runs=int(n_runs),
                     seed=base_config.seed, cells=tuple(cells))


def plan_campaign(config: ScenarioConfig, n_runs: int) -> SweepPlan:
    """Flatten one scenario's replication campaign (no sweep) into cells.

    Used by :class:`~repro.sim.runner.MonteCarloRunner` so a plain
    ``summary()`` call can ride the same executor layer as the figure
    sweeps.
    """
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    ref = _scenario_ref(config)
    cells = tuple(
        Cell(scheme=config.scheme, point_index=0, run_index=run_index,
             config=config, scenario_ref=ref)
        for run_index in range(n_runs))
    return SweepPlan(parameter=CAMPAIGN_PARAMETER, values=(None,),
                     schemes=(config.scheme,), n_runs=int(n_runs),
                     seed=config.seed, cells=cells)


def ensure_picklable(cells: Iterable[Cell]) -> None:
    """Verify every cell survives pickling before multiprocess dispatch.

    A :class:`~repro.sim.config.ScenarioConfig` usually pickles cleanly,
    but ``fault_plan`` accepts arbitrary stateful objects (lambdas, open
    handles, test doubles) that cannot cross a process boundary.  Failing
    here, with a pointer at the serial path, beats an opaque
    ``PicklingError`` from deep inside ``multiprocessing``.
    """
    try:
        pickle.dumps(list(cells))
    except Exception as exc:
        raise ConfigurationError(
            f"scenario config cannot be pickled for multiprocess "
            f"execution ({exc}); a stateful fault_plan or custom topology "
            f"object is the usual cause -- rerun with --jobs 1 (serial "
            f"execution) or make the config picklable") from exc
