"""Config-hash-keyed cache of built-scenario artifacts.

The build/run split (:mod:`repro.sim.build`) makes scenario construction
a pure function of the config's physical identity; this module adds the
cache.  A :class:`ScenarioStore` maps
:func:`~repro.store.confighash.scenario_hash` values to
:class:`~repro.sim.build.BuiltScenario` artifacts, first in process
memory, then -- when attached to a
:class:`~repro.store.workspace.FileWorkspace` -- on disk, so warmed
artifacts survive across processes, ``--jobs`` pool workers, and whole
sessions.

The store is a pure accelerator: :func:`built_for` returns ``None``
whenever the store is disabled and the engine then derives everything
itself, bit-identically.  The global switch mirrors
:mod:`repro.core.accel`: on by default, disabled by the environment
variable ``REPRO_SCENARIO_STORE=0`` (inherited by worker processes) or
scoped off with :func:`use_store` for differential tests.

Cache traffic is observable: every lookup increments the plain
:attr:`ScenarioStore.hits` / :attr:`~ScenarioStore.misses` /
:attr:`~ScenarioStore.disk_loads` counters, and -- when metrics
collection is on -- the ``repro_scenario_store_requests_total`` counter
(labelled ``result=hit|miss|disk``), which rides replication snapshots
back from pool workers like every other engine metric.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import global_registry, metrics_enabled
from repro.sim.build import BuiltScenario, build_scenario
from repro.sim.config import ScenarioConfig
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import RunMetrics
from repro.store.confighash import scenario_hash

logger = get_logger(__name__)

#: Environment switch: ``0`` disables the store process-wide (workers
#: inherit it).  Anything else -- including unset -- leaves it on.
ENV_STORE = "REPRO_SCENARIO_STORE"

#: Environment handoff of the active workspace root to pool workers:
#: :func:`default_store` attaches a FileWorkspace from it lazily, so a
#: worker's first replication can load warmed artifacts from disk.
ENV_WORKSPACE = "REPRO_WORKSPACE"

#: Environment override of the disk-persistence floor, in seconds.
ENV_DISK_FLOOR = "REPRO_STORE_DISK_FLOOR"

#: Default disk-persistence floor: builds cheaper than this are not
#: worth a deserialisation round-trip (BENCH_store.json measured disk
#: loads at ~1.3x the cost of just rebuilding the small bench scenario),
#: so they stay memory-tier only.
DEFAULT_DISK_FLOOR_SECONDS = 0.002

#: Tri-state in-process override: ``None`` follows the environment.
_ENABLED: Optional[bool] = None


def default_disk_floor() -> float:
    """The active disk-persistence floor (env override, else default)."""
    raw = os.environ.get(ENV_DISK_FLOOR)
    if raw is not None:
        try:
            return max(0.0, float(raw))
        except ValueError:
            logger.warning("ignoring non-numeric %s=%r", ENV_DISK_FLOOR, raw)
    return DEFAULT_DISK_FLOOR_SECONDS


def store_enabled() -> bool:
    """Whether scenario caching is active in this process."""
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get(ENV_STORE, "1") != "0"


@contextmanager
def use_store(enabled: bool) -> Iterator[None]:
    """Scoped override of the store switch (differential tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


class ScenarioStore:
    """Cache of built scenarios, keyed by scenario hash.

    Parameters
    ----------
    workspace:
        Optional :class:`~repro.store.workspace.FileWorkspace`; when
        attached, artifacts built here are persisted to its
        ``scenarios/`` directory and misses consult the disk before
        rebuilding.
    disk_floor_seconds:
        Minimum measured build cost (seconds) for an artifact to earn
        disk persistence; cheaper builds stay memory-tier only, since
        loading them back would cost more than rebuilding (the
        ``disk_speedup: 0.76`` pessimization in BENCH_store.json).
        ``None`` (default) resolves :data:`ENV_DISK_FLOOR`, falling back
        to :data:`DEFAULT_DISK_FLOOR_SECONDS`; pass ``0.0`` to persist
        unconditionally (the pre-floor behaviour).

    Notes
    -----
    Single-threaded by design, like the rest of the execution layer:
    each process owns its store, and cross-process sharing happens only
    through the workspace's content-addressed files (concurrent writers
    of one hash write identical bytes through atomic renames, so there
    is nothing to coordinate).
    """

    def __init__(self, workspace: Optional[object] = None, *,
                 disk_floor_seconds: Optional[float] = None) -> None:
        self.workspace = workspace
        self.disk_floor_seconds = (default_disk_floor()
                                   if disk_floor_seconds is None
                                   else max(0.0, float(disk_floor_seconds)))
        self._memory: Dict[str, BuiltScenario] = {}
        self.hits = 0
        self.misses = 0
        self.disk_loads = 0
        self.persist_skips = 0

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, ref: str) -> bool:
        return ref in self._memory

    def _count(self, result: str) -> None:
        if metrics_enabled():
            global_registry().counter(
                "repro_scenario_store_requests_total", result=result).inc()

    def get_or_build(self, config: ScenarioConfig, *,
                     ref: Optional[str] = None) -> BuiltScenario:
        """Return the built scenario for ``config``, building at most once.

        ``ref`` short-circuits the hash computation when the caller (the
        sweep planner) already knows it; otherwise
        :func:`~repro.store.confighash.scenario_hash` derives it (cheap
        after the first call -- the topology digest memoizes on the
        shared topology object).
        """
        if ref is None:
            ref = scenario_hash(config)
        built = self._memory.get(ref)
        if built is not None:
            self.hits += 1
            self._count("hit")
            return built
        if self.workspace is not None:
            built = self.workspace.load_scenario(ref)
            if built is not None:
                self.disk_loads += 1
                self._count("disk")
                self._memory[ref] = built
                return built
        self.misses += 1
        self._count("miss")
        build_start = time.perf_counter()
        built = build_scenario(config, scenario_hash=ref)
        build_seconds = time.perf_counter() - build_start
        self._memory[ref] = built
        if self.workspace is not None:
            # Disk is only a win when rebuilding costs more than a load:
            # persisting a build cheaper than the floor would *slow down*
            # every future cold process (the disk-tier pessimization the
            # store benchmark exposed).  The memory tier keeps serving
            # this process either way.
            if build_seconds >= self.disk_floor_seconds:
                self.workspace.save_scenario(built)
            else:
                self.persist_skips += 1
                self._count("persist-skipped")
                logger.debug(
                    "scenario %s built in %.3f ms, below the %.3f ms disk "
                    "floor; keeping it memory-tier only", ref[:12],
                    build_seconds * 1e3, self.disk_floor_seconds * 1e3)
        return built

    def clear(self) -> None:
        """Drop every memory-cached artifact (disk files are untouched)."""
        self._memory.clear()


#: Lazily created per-process store shared by every replication.
_DEFAULT_STORE: Optional[ScenarioStore] = None


def default_store() -> ScenarioStore:
    """The process-wide store, created on first use.

    If :data:`ENV_WORKSPACE` names a directory (exported by the parent
    when ``--workspace`` is active), the store attaches a
    :class:`~repro.store.workspace.FileWorkspace` there -- this is how
    ``--jobs`` pool workers pick up the parent's disk cache.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        workspace = None
        root = os.environ.get(ENV_WORKSPACE)
        if root:
            from repro.store.workspace import FileWorkspace
            workspace = FileWorkspace(root)
        _DEFAULT_STORE = ScenarioStore(workspace=workspace)
    return _DEFAULT_STORE


def set_default_store(store: Optional[ScenarioStore]) -> None:
    """Replace the process-wide store (tests and workspace activation)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


def reset_default_store() -> None:
    """Drop the process-wide store so the next use re-reads the env."""
    set_default_store(None)


def activate_workspace(workspace: object) -> object:
    """Attach a workspace to the default store and export it to workers.

    Accepts a :class:`~repro.store.workspace.FileWorkspace` or a
    directory path.  Exporting :data:`ENV_WORKSPACE` is what lets pool
    workers (fork or spawn) reattach to the same on-disk cache.
    """
    from repro.store.workspace import FileWorkspace
    if not isinstance(workspace, FileWorkspace):
        workspace = FileWorkspace(workspace)
    os.environ[ENV_WORKSPACE] = str(workspace.root)
    default_store().workspace = workspace
    return workspace


def built_for(config: ScenarioConfig, *,
              ref: Optional[str] = None) -> Optional[BuiltScenario]:
    """The cached build for ``config``, or ``None`` with the store off.

    The single integration point for the execution layer: a ``None``
    return tells the engine to derive its invariants inline, which is
    bit-identical to consuming the cached artifact.
    """
    if not store_enabled():
        return None
    if ref is None:
        try:
            ref = scenario_hash(config)
        except TypeError:
            # A config with no content identity (a test-double topology,
            # say) cannot be cached; it builds inline instead -- the
            # store is an accelerator, never a new failure mode.
            return None
    return default_store().get_or_build(config, ref=ref)


def scenario_engine(config: ScenarioConfig, *,
                    built: Optional[BuiltScenario] = None,
                    store: Optional[ScenarioStore] = None,
                    record_slots: bool = False) -> SimulationEngine:
    """Build-phase entry point: an engine over a (possibly cached) build.

    Resolution order for the built artifact: an explicit ``built``, an
    explicit ``store``, the process default store (when enabled), else
    an inline build inside the engine constructor.
    """
    if built is None:
        if store is not None:
            built = store.get_or_build(config)
        else:
            built = built_for(config)
    return SimulationEngine(config, built=built, record_slots=record_slots)


def run_scenario(config: ScenarioConfig, *,
                 built: Optional[BuiltScenario] = None,
                 store: Optional[ScenarioStore] = None,
                 record_slots: bool = False) -> RunMetrics:
    """Run-phase entry point: simulate one run against a cached build.

    The split counterpart of :func:`repro.sim.build.build_scenario`:
    ``build_scenario`` once per physical scenario, ``run_scenario`` once
    per (scheme, seed, replication) against it.
    """
    return scenario_engine(config, built=built, store=store,
                           record_slots=record_slots).run()
