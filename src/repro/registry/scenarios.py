"""Typed registry of scenario (topology + workload) generators.

A scenario generator is a callable that builds a fully-validated
:class:`~repro.sim.config.ScenarioConfig` from keyword parameters.
Building through :meth:`ScenarioRegistry.build` additionally stamps the
generator's *identity* onto the config -- the registered name plus the
build parameters, normalised to a sorted tuple of pairs -- so two
configs built from different generators (or the same generator with
different knobs) can never collide in ``scenario_hash`` even if their
scalar fields happen to agree.  The stamp flows from there into
``config_hash``, provenance manifests, checkpoint fingerprints, and the
scenario store's artifact keys without any of those layers knowing the
registry exists.

Run-only parameters (``scheme``, ``seed``, ``n_gops``) are excluded
from the stamp: replications and scheme variants of one physical
scenario must keep sharing a single ``scenario_hash`` so the store
builds each topology once per sweep, not once per cell.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

from repro.utils.errors import ConfigurationError

#: Generator parameters that select a *run*, not a physical scenario.
#: They never enter the identity stamp (see module docstring).
RUN_ONLY_PARAMS = frozenset({"scheme", "seed", "n_gops"})


@dataclass(frozen=True)
class ScenarioInfo:
    """One registered scenario generator.

    ``factory`` takes keyword parameters and returns a validated
    :class:`~repro.sim.config.ScenarioConfig`; ``description`` is the
    one-liner shown by ``repro scenarios``.
    """

    name: str
    factory: Callable[..., object]
    description: str = ""


class ScenarioRegistry:
    """Name-keyed collection of :class:`ScenarioInfo` entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, ScenarioInfo] = {}

    def register(self, info: ScenarioInfo) -> ScenarioInfo:
        """Add a generator; duplicate names are a configuration error."""
        if not info.name:
            raise ConfigurationError("scenario name must be non-empty")
        if info.name in self._entries:
            raise ConfigurationError(
                f"scenario {info.name!r} is already registered")
        self._entries[info.name] = info
        return info

    def get(self, name: str) -> ScenarioInfo:
        """Look up a generator; unknown names list what *is* registered."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown scenario {name!r}; registered scenarios: "
                f"{self.names()}") from None

    def build(self, name: str, **params):
        """Build a config through the named generator and stamp identity.

        The returned config carries ``generator=name`` and
        ``generator_params`` equal to the sorted non-run-only keyword
        arguments, making the generator part of the scenario's hash
        identity.
        """
        config = self.get(name).factory(**params)
        identity = tuple(sorted(
            (key, value) for key, value in params.items()
            if key not in RUN_ONLY_PARAMS))
        return config.replace(generator=name, generator_params=identity)

    def names(self) -> Tuple[str, ...]:
        """Registered scenario names, in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[ScenarioInfo]:
        return iter(list(self._entries.values()))

    def __len__(self) -> int:
        return len(self._entries)

    @contextmanager
    def temporarily(self, info: ScenarioInfo):
        """Scoped registration (tests register throwaway scenarios)."""
        self.register(info)
        try:
            yield info
        finally:
            self._entries.pop(info.name, None)


#: The process-wide scenario registry.
_SCENARIOS = ScenarioRegistry()

#: Whether the built-in scenario modules have been imported yet.
_BUILTINS_LOADED = False


def register_scenario(info: ScenarioInfo) -> ScenarioInfo:
    """Register a generator with the process-wide registry."""
    return _SCENARIOS.register(info)


def scenario_registry() -> ScenarioRegistry:
    """The process-wide registry, with built-ins loaded on first use."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.experiments.citygrid  # noqa: F401
        import repro.experiments.scenarios  # noqa: F401
    return _SCENARIOS
