"""Parallel execution subsystem: plan/execute split for Monte-Carlo work.

A figure sweep is an embarrassingly parallel grid of independent
``(scheme, sweep point, replication)`` cells whose seeds are all derived
from one root seed.  This package separates *planning* -- flattening a
sweep (or a single Monte-Carlo campaign) into a deterministic list of
picklable :class:`~repro.exec.plan.Cell` work items -- from *execution*,
a swappable :class:`~repro.exec.executor.Executor` strategy
(:class:`~repro.exec.executor.SerialExecutor` in-process,
:class:`~repro.exec.executor.ParallelExecutor` across a process pool).

Because every cell's randomness is derived from ``(root seed, run
index)`` alone and results are assembled by cell key rather than
completion order, parallel execution is bit-identical to serial
execution -- the paired comparisons of the paper's figures survive
unchanged at any worker count.
"""

from repro.exec.executor import (
    CellOutcome,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.exec.plan import Cell, SweepPlan, ensure_picklable, plan_campaign, plan_sweep
from repro.exec.progress import (
    CellTiming,
    ProgressTracker,
    TimingReport,
    parse_progress_line,
)
from repro.exec.supervisor import (
    EXIT_DEADLINE,
    EXIT_FAILED_RUNS,
    EXIT_HARD_ABORT,
    EXIT_INTERRUPTED,
    ShutdownCoordinator,
    SupervisedExecutor,
    active_shutdown,
    apply_backoff,
    backoff_delay,
    shutdown_draining,
)

__all__ = [
    "Cell",
    "CellOutcome",
    "CellTiming",
    "EXIT_DEADLINE",
    "EXIT_FAILED_RUNS",
    "EXIT_HARD_ABORT",
    "EXIT_INTERRUPTED",
    "Executor",
    "ParallelExecutor",
    "ProgressTracker",
    "SerialExecutor",
    "ShutdownCoordinator",
    "SupervisedExecutor",
    "SweepPlan",
    "TimingReport",
    "active_shutdown",
    "apply_backoff",
    "backoff_delay",
    "ensure_picklable",
    "make_executor",
    "parse_progress_line",
    "plan_campaign",
    "plan_sweep",
    "shutdown_draining",
]
