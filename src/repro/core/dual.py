"""The distributed dual-decomposition algorithm (Tables I and II).

Problem (12) (single FBS) and problem (17) (multiple non-interfering
FBSs) are solved by Lagrangian dual decomposition: relax the slot-simplex
constraints with multipliers ``lambda = [lambda_0, lambda_1..lambda_N]``
(one per base station), let every CR user solve its own subproblem (14) in
closed form using only local information, and let the MBS update the
multipliers with a projected subgradient step (eqs. (16), (18)-(19)):

    lambda_i(tau+1) = [lambda_i(tau) - s * (1 - sum_j rho*_{i,j}(tau))]^+

The iteration stops when ``sum_i (lambda_i(tau+1) - lambda_i(tau))^2`` is
below the prescribed threshold ``phi`` (Tables I/II, step 11).

Per-user subproblem (Table I, steps 3-8).  For given multipliers the
stationary point of ``L_j`` in each branch is closed-form water-filling:

    rho0_j = [ sP0_j / lambda_0 - W_j / R0_j ]^+
    rhoi_j = [ sPi_j / lambda_i - W_j / (G_i R1_j) ]^+

and the user picks the branch (MBS vs FBS) whose Lagrangian term is
larger; by Theorem 1 the optimal choice is binary.

Two solvers are provided:

* :class:`DualDecompositionSolver` -- the faithful subgradient iteration,
  including the multiplier trace plotted in Fig. 4(a).
* :func:`fast_solve` -- a capped subgradient run followed by exact
  single-flip local search (:func:`flip_polish`), used where many
  evaluations are needed (the greedy channel allocation of Table III
  evaluates ``Q(c)`` hundreds of times per slot).  It returns the same
  solutions as the full subgradient method on the paper's scenarios and
  is validated against the exhaustive oracle in the test suite.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.accel import acceleration_enabled
from repro.core.problem import Allocation, SlotProblem
from repro.core.reference import compile_slot_problem, solve_given_assignment
from repro.obs.metrics import ITERATION_BUCKETS, global_registry, metrics_enabled
from repro.obs.trace import active_tracer
from repro.utils.errors import ConfigurationError, ConvergenceError

#: Multipliers below this are treated as zero when inverting (avoids
#: division warnings; the resulting share is clipped to 1 anyway).
_LAMBDA_EPS = 1e-300

#: Limit-cycle detection: past ``decay_after``, recover the primal every
#: this many iterations and stop after this many stagnant recoveries.
_STALL_CHECK_EVERY = 100
_STALL_PATIENCE = 3


@dataclass
class DualSolution:
    """Result of a dual-decomposition solve.

    Attributes
    ----------
    allocation:
        The recovered primal allocation (feasible by construction).
    multipliers:
        Final dual variables, ``{0: lambda_0, fbs_id: lambda_i, ...}``.
    iterations:
        Subgradient steps performed.
    converged:
        Whether the stopping rule fired before the iteration budget.
    trace:
        Optional per-iteration multiplier history (iterations x stations),
        recorded when ``record_trace=True``; this is the data behind
        Fig. 4(a).
    trace_stations:
        Column labels of ``trace`` (station ids: 0 for the MBS).
    """

    allocation: Allocation
    multipliers: Dict[int, float]
    iterations: int
    converged: bool
    trace: Optional[np.ndarray] = None
    trace_stations: Optional[List[int]] = None


class DualDecompositionSolver:
    """Projected-subgradient dual solver (Tables I and II).

    Parameters
    ----------
    step_size:
        Relative step ``s`` -- scaled by the problem's natural multiplier
        magnitude so one configuration works across bandwidth scales.
    threshold:
        Relative stopping threshold ``phi``; the iteration stops when the
        squared multiplier movement falls below ``(threshold * scale)^2``.
    max_iterations:
        Iteration budget.
    decay_after:
        Iteration after which the step size decays as ``1/tau`` (a
        standard diminishing-step schedule).  The paper uses a fixed
        "sufficiently small" step; a fixed step can limit-cycle when user
        branch choices flip persistently, so after ``decay_after``
        fixed-step iterations the schedule starts shrinking, which
        guarantees the Table I stopping rule eventually fires.  Set it
        above ``max_iterations`` to reproduce the paper's fixed step
        exactly.
    strict:
        When ``True``, raise :class:`ConvergenceError` if the budget is
        exhausted; otherwise return the best iterate found.
    record_trace:
        Keep the full multiplier history (Fig. 4(a)).
    """

    def __init__(self, *, step_size: float = 0.02, threshold: float = 1e-5,
                 max_iterations: int = 5000, decay_after: int = 400,
                 strict: bool = False, record_trace: bool = False) -> None:
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be positive, got {step_size}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        if max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {max_iterations}")
        if decay_after <= 0:
            raise ConfigurationError(
                f"decay_after must be positive, got {decay_after}")
        self.step_size = float(step_size)
        self.threshold = float(threshold)
        self.max_iterations = int(max_iterations)
        self.decay_after = int(decay_after)
        self.strict = bool(strict)
        self.record_trace = bool(record_trace)

    def solve(self, problem: SlotProblem,
              initial_multipliers: Optional[Dict[int, float]] = None) -> DualSolution:
        """Run the distributed algorithm on one slot problem.

        Parameters
        ----------
        problem:
            The slot problem (single- or multi-FBS).
        initial_multipliers:
            Warm-start values ``{station_id: lambda}``; stations not listed
            start from the automatic scale estimate.
        """
        # Observability: one global read each; both gates are None/False
        # on the hot path with telemetry off.
        tracer = active_tracer()
        if tracer is not None and not tracer.collect_phases:
            tracer = None
        solve_start = time.perf_counter() if tracer is not None else 0.0

        stations = [0] + problem.fbs_ids
        station_pos = {station: pos for pos, station in enumerate(stations)}

        # Vectorise the user data once.
        users = list(problem.users)
        n = len(users)
        w = np.array([u.w_prev for u in users])
        s_mbs = np.array([u.success_mbs for u in users])
        s_fbs = np.array([u.success_fbs for u in users])
        r_mbs = np.array([u.r_mbs for u in users])
        r_fbs_eff = np.array([problem.g_for_user(u) * u.r_fbs for u in users])
        fbs_pos = np.array([station_pos[u.fbs_id] for u in users])

        # Natural multiplier scale: marginal utility of the first unit of
        # share, averaged over users/branches.  Problem (12) is invariant
        # to a common rescaling of (W, R), which rescales lambda by the
        # inverse; anchoring step and threshold to this scale makes the
        # solver configuration dimensionless.
        marginals = np.concatenate([s_mbs * r_mbs / w, s_fbs * r_fbs_eff / w])
        positive = marginals[marginals > 0]
        scale = float(positive.mean()) if positive.size else 1.0
        step = self.step_size * scale
        stop_sq = (self.threshold * scale) ** 2

        lam = np.full(len(stations), scale)
        if initial_multipliers:
            for station, value in initial_multipliers.items():
                if station in station_pos:
                    lam[station_pos[station]] = max(0.0, float(value))

        trace = [lam.copy()] if self.record_trace else None
        converged = False
        iterations = 0
        movement = float("inf")
        best_recovered = None
        stagnant_checks = 0
        choose_mbs = np.zeros(n, dtype=bool)
        rho0 = np.zeros(n)
        rho1 = np.zeros(n)

        # Accelerated kernel (DESIGN §10): the per-iteration work of
        # _branch_share is dominated by recomputing loop invariants (the
        # live masks and W/slope costs) and re-entering np.errstate.
        # Hoist them and inline the share computation; the arithmetic is
        # operation-for-operation the same, so the iterates -- and hence
        # the solution -- are bit-identical to the oracle path.
        accel = acceleration_enabled()
        if accel:
            live0 = (r_mbs > 0) & (s_mbs > 0)
            live1 = (r_fbs_eff > 0) & (s_fbs > 0)
            dead0 = ~live0
            dead1 = ~live1
            with np.errstate(over="ignore"):
                cost0 = w / np.where(live0, r_mbs, 1.0)
                cost1 = w / np.where(live1, r_fbs_eff, 1.0)

        with np.errstate(over="ignore") if accel else nullcontext():
            for iterations in range(1, self.max_iterations + 1):
                lam0 = lam[0]
                lam_user = lam[fbs_pos]
                # Table I step 3: closed-form stationary shares, clipped to
                # the per-user range [0, 1] (no user can exceed the slot).
                if accel:
                    safe_lam0 = lam0 if lam0 > _LAMBDA_EPS else _LAMBDA_EPS
                    rho0 = s_mbs / safe_lam0 - cost0
                    np.maximum(rho0, 0.0, out=rho0)
                    np.minimum(rho0, 1.0, out=rho0)
                    rho0[dead0] = 0.0
                    safe_lam1 = np.where(lam_user > _LAMBDA_EPS, lam_user,
                                         _LAMBDA_EPS)
                    rho1 = s_fbs / safe_lam1 - cost1
                    np.maximum(rho1, 0.0, out=rho1)
                    np.minimum(rho1, 1.0, out=rho1)
                    rho1[dead1] = 0.0
                else:
                    rho0 = _branch_share(s_mbs, lam0, w, r_mbs)
                    rho1 = _branch_share(s_fbs, lam_user, w, r_fbs_eff)
                # Table I step 4: pick the branch with the larger Lagrangian
                # term.  Utilities are expected log-PSNR gains (see
                # repro.core.problem for the eq. (11) vs eq. (12) discussion).
                util0 = s_mbs * np.log1p(rho0 * r_mbs / w) - lam0 * rho0
                util1 = s_fbs * np.log1p(rho1 * r_fbs_eff / w) - lam_user * rho1
                choose_mbs = util0 > util1

                # Steps 9 / eqs. (16),(18),(19): projected subgradient update
                # using only the shares of users that selected each station.
                usage = np.zeros(len(stations))
                usage[0] = rho0[choose_mbs].sum()
                np.add.at(usage, fbs_pos[~choose_mbs], rho1[~choose_mbs])
                effective_step = (step if iterations <= self.decay_after
                                  else step * self.decay_after / iterations)
                new_lam = np.maximum(0.0, lam - effective_step * (1.0 - usage))
                movement = float(np.square(new_lam - lam).sum())
                lam = new_lam
                if trace is not None:
                    trace.append(lam.copy())
                if movement <= stop_sq:
                    converged = True
                    break
                if iterations % _STALL_CHECK_EVERY == 0 and iterations > self.decay_after:
                    # Secondary exit for limit cycles: when branch choices flip
                    # persistently the multiplier movement never vanishes, but
                    # the recovered primal stops improving -- track the best
                    # assignment seen and stop once it stagnates.
                    assignment = {users[j].user_id for j in range(n) if choose_mbs[j]}
                    candidate = solve_given_assignment(problem, assignment)
                    if best_recovered is None or (candidate.objective
                                                  > best_recovered.objective + 1e-12):
                        best_recovered = candidate
                        stagnant_checks = 0
                    else:
                        stagnant_checks += 1
                        if stagnant_checks >= _STALL_PATIENCE:
                            break

        if metrics_enabled():
            registry = global_registry()
            registry.counter("repro_solver_solves_total",
                             converged=str(converged).lower()).inc()
            registry.counter("repro_solver_iterations_total").inc(iterations)
            registry.histogram("repro_solver_iterations",
                               buckets=ITERATION_BUCKETS).observe(iterations)
        if tracer is not None:
            tracer.emit_span("dual-solve", kind="solver",
                             seconds=time.perf_counter() - solve_start,
                             iterations=iterations, converged=converged,
                             stations=len(stations))

        if not converged and self.strict:
            raise ConvergenceError(
                f"dual decomposition did not converge in {self.max_iterations} "
                f"iterations", iterations=iterations, residual=movement)

        mbs_set = {users[j].user_id for j in range(n) if choose_mbs[j]}
        # Primal recovery: the subgradient iterate is approximately
        # complementary; re-solving the (convex) problem for the final
        # binary assignment yields an exactly feasible, exactly optimal
        # allocation for that assignment.
        allocation = solve_given_assignment(problem, mbs_set)
        if best_recovered is not None and (best_recovered.objective
                                           > allocation.objective):
            allocation = best_recovered
        return DualSolution(
            allocation=allocation,
            multipliers={station: float(lam[station_pos[station]]) for station in stations},
            iterations=iterations,
            converged=converged,
            trace=np.array(trace) if trace is not None else None,
            trace_stations=list(stations) if trace is not None else None,
        )


def _branch_share(success: np.ndarray, lam, w: np.ndarray,
                  slope: np.ndarray) -> np.ndarray:
    """Closed-form subproblem share ``[success/lambda - W/slope]^+``.

    Degenerate entries -- zero slope (no bandwidth / no channels) or zero
    success probability -- get zero share.  A zero multiplier with a live
    branch clips to the full slot.  ``lam`` may be a scalar or an array
    aligned with the users.
    """
    lam_arr = np.asarray(lam, dtype=float) + 0.0 * w
    live = (slope > 0) & (success > 0)
    safe_lam = np.where(lam_arr > _LAMBDA_EPS, lam_arr, _LAMBDA_EPS)
    safe_slope = np.where(live, slope, 1.0)
    with np.errstate(over="ignore"):
        # A vanishing multiplier makes the unconstrained share blow up;
        # the clip to the full slot below makes the overflow harmless.
        raw = success / safe_lam - w / safe_slope
    raw[raw < 0.0] = 0.0
    raw[raw > 1.0] = 1.0
    raw[~live] = 0.0
    return raw


@lru_cache(maxsize=16)
def _fast_solver(max_iterations: int) -> DualDecompositionSolver:
    """Shared solver instances for :func:`fast_solve`, keyed on the budget.

    The solver is stateless across calls, so instances can be shared
    freely; ``lru_cache`` keeps one per distinct ``max_iterations`` and is
    safe under concurrent callers (threads or forked workers each resolve
    to an equivalent instance), unlike the old single module-global slot
    which thrashed and raced when two budgets alternated.
    """
    return DualDecompositionSolver(max_iterations=max_iterations)


def fast_solve(problem: SlotProblem, *, max_iterations: int = 400,
               polish: bool = True,
               initial_multipliers: Optional[Dict[int, float]] = None) -> Allocation:
    """Fast solver: capped subgradient run plus single-flip local search.

    Runs the Table I/II iteration with a reduced budget, then polishes the
    resulting binary assignment by exact single-user flips (each candidate
    evaluated with the exact water-filling oracle).  On randomized
    instances this matches the exhaustive optimum (see the test suite)
    while being fast enough for the greedy channel allocation's many
    ``Q(c)`` evaluations.

    Parameters
    ----------
    problem:
        The slot problem.
    max_iterations:
        Subgradient budget before the polish stage.
    polish:
        Disable to get the raw capped-subgradient solution.
    initial_multipliers:
        Warm start, useful across consecutive ``Q`` evaluations.
    """
    solution = _fast_solver(max_iterations).solve(
        problem, initial_multipliers=initial_multipliers)
    if not polish:
        return solution.allocation
    return flip_polish(problem, solution.allocation)


def fast_solve_warm(problem: SlotProblem, warm_multipliers: Dict[int, float], *,
                    max_iterations: int = 400, polish: bool = True) -> Allocation:
    """:func:`fast_solve` with a persistent warm-start multiplier store.

    ``warm_multipliers`` is read as the initial dual point (when
    non-empty) and replaced in place with the final multipliers, so a
    caller holding one dict across consecutive slots chains each solve
    off the previous slot's dual optimum.  Per-slot problems drift slowly
    (the PSNR states ``W_j`` move by one slot's increment), so the warm
    dual point is near-optimal and the subgradient loop converges in far
    fewer iterations.  Note the warm-started iterate path differs from a
    cold solve, so allocations are not bit-identical to cold ones -- the
    benchmark asserts they are equal-or-better in objective instead.
    """
    solution = _fast_solver(max_iterations).solve(
        problem, initial_multipliers=dict(warm_multipliers) or None)
    warm_multipliers.clear()
    warm_multipliers.update(solution.multipliers)
    if not polish:
        return solution.allocation
    return flip_polish(problem, solution.allocation)


def flip_polish(problem: SlotProblem, allocation: Allocation, *,
                max_sweeps: int = 50) -> Allocation:
    """1-opt local search over the binary base-station assignment.

    Repeatedly flips single users between MBS and FBS, re-solving the
    (convex) time-share problem exactly after each candidate flip, until
    no flip improves the objective.  Starting from the dual iterate this
    reliably removes the rare residual assignment error of a capped
    subgradient run.
    """
    if acceleration_enabled():
        # Compile once: the K solves per sweep then skip the per-call
        # compile-cache lookup and share one water-filling group cache.
        compiled = compile_slot_problem(problem)
        expected = problem.expected_channels

        def solve(mbs_user_ids):
            return compiled.solve_assignment(mbs_user_ids, expected)
    else:
        def solve(mbs_user_ids):
            return solve_given_assignment(problem, mbs_user_ids)
    best = (allocation if not np.isnan(allocation.objective)
            else solve(allocation.mbs_user_ids))
    for _sweep in range(max_sweeps):
        improved = False
        for user in problem.users:
            trial = set(best.mbs_user_ids)
            trial.symmetric_difference_update({user.user_id})
            candidate = solve(trial)
            if candidate.objective > best.objective + 1e-15:
                best = candidate
                improved = True
        if not improved:
            break
    return best
