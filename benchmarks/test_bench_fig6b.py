"""Fig. 6(b) -- quality vs sensing-error operating point (interfering).

Paper claims: quality degrades when either error probability grows
large, but the dynamic range is small because both error types are
modelled inside the optimisation; proposed wins across the range.
"""

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro.experiments.fig6 import FIG6B_ERROR_PAIRS, run_fig6b
from repro.experiments.report import format_sweep


def test_bench_fig6b(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6b(n_runs=BENCH_RUNS, n_gops=BENCH_GOPS, seed=BENCH_SEED),
        rounds=1, iterations=1)
    report("Fig. 6(b): Y-PSNR (dB) vs sensing errors (eps, delta), "
           "interfering FBSs",
           format_sweep(result, upper_bound=True,
                        value_format="{0[0]}/{0[1]}"))

    proposed = result.series("proposed-fast")
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(proposed) > mean(result.series("heuristic1"))
    # Narrow dynamic range: the whole sweep moves by < 2.5 dB (the paper's
    # spread is about 1.5 dB) because both error types are modelled.
    assert max(proposed) - min(proposed) < 2.5
    # The balanced operating point is not the worst one.
    balanced = FIG6B_ERROR_PAIRS.index((0.3, 0.3))
    assert proposed[balanced] >= min(proposed)
