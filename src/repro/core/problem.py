"""The per-slot resource-allocation problem.

Section IV decomposes the multistage stochastic program (10) into ``T``
serial per-slot convex programs (problem (11)/(12)); this module is the
data model for one such slot.  In the unified notation of problem (17)
(which covers the single-FBS case with ``N = 1``):

    maximize  sum_j [ p_j * sP0_j * (log(W_j + rho0_j * R0_j) - log W_j)
                    + q_j * sPi_j * (log(W_j + rhoi_j * G_i * R1_j) - log W_j) ]
    s.t.      sum_j rho0_j <= 1                      (common channel)
              sum_{j in U_i} rhoi_j <= 1  for all i  (each FBS's slot)
              p_j + q_j = 1,  all variables >= 0

where ``sP0_j = bar P^F_{0,j}`` and ``sPi_j = bar P^F_{i,j}`` are the
slot's link success probabilities, ``W_j`` the accumulated PSNR state,
``R0_j = beta_j B0 / T`` and ``R1_j = beta_j B1 / T`` the per-slot PSNR
increments, and ``G_i`` the expected number of licensed channels available
to FBS ``i`` after sensing, access control, and (in the interfering case)
channel allocation.

A note on fidelity to the paper's eq. (12).  Expanding the conditional
expectation of eq. (11) over the Bernoulli loss indicator ``xi`` gives,
for the MBS branch, ``sP0 * log(W + rho0 R0) + (1 - sP0) * log(W)`` --
the failure term ``(1 - sP) log W`` is part of the expectation but is
dropped in the paper's printed eq. (12).  Because that term is constant
in ``rho`` it never changes the water-filling step (Table I, step 3),
but it *does* matter for the MBS-vs-FBS branch comparison: without it,
the comparison is dominated by ``(sP0 - sP1) * log W`` and users with a
slightly weaker link simply idle, contradicting the optimality the paper
claims for (11).  We therefore keep the full expectation of eq. (11) and
subtract the allocation-independent constant ``sum_j log W_j``, i.e. the
objective implemented everywhere in this package is the **expected
log-PSNR gain** of the slot.  The per-branch objective is then
``sP * (log(W + rho * slope) - log W)``, which is non-negative, zero at
``rho = 0``, and reduces to the paper's comparison whenever
``sP0_j = sP1_j``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive, check_probability

#: Numerical slack tolerated when checking simplex feasibility.
FEASIBILITY_TOL = 1e-9


@dataclass(frozen=True)
class UserDemand:
    """One CR user's view of the slot's allocation problem.

    Attributes
    ----------
    user_id:
        Stable identifier (used to report allocations).
    fbs_id:
        The associated FBS (1-based; 0 is reserved for the MBS).
    w_prev:
        Accumulated PSNR state ``W_j^{t-1}`` in dB; strictly positive
        (initialised to the base-layer quality ``alpha_j``).
    success_mbs:
        ``bar P^F_{0,j}`` -- probability a slot on the MBS link decodes.
    success_fbs:
        ``bar P^F_{i,j}`` -- probability a slot on the FBS link decodes.
    r_mbs:
        ``R_{0,j} = beta_j B0 / T`` -- PSNR increment per unit time share
        on the common channel.
    r_fbs:
        ``R_{1,j} = beta_j B1 / T`` -- PSNR increment per unit time share
        per licensed channel.
    csi_mbs, csi_fbs:
        Optional realised block-fading SINR *margins* (``X / H``; the
        link decodes this slot iff the margin exceeds 1).  The proposed
        algorithms never read these -- they optimise expectations, as
        problem (10) prescribes -- but the heuristic baselines schedule on
        instantaneous channel conditions (Section V) and the engine's
        transmission phase realises the loss indicators ``xi`` from them.
    """

    user_id: int
    fbs_id: int
    w_prev: float
    success_mbs: float
    success_fbs: float
    r_mbs: float
    r_fbs: float
    csi_mbs: Optional[float] = None
    csi_fbs: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fbs_id < 1:
            raise ConfigurationError(
                f"fbs_id must be >= 1 (0 is the MBS), got {self.fbs_id}")
        check_positive(self.w_prev, "w_prev")
        check_probability(self.success_mbs, "success_mbs")
        check_probability(self.success_fbs, "success_fbs")
        check_positive(self.r_mbs, "r_mbs", allow_zero=True)
        check_positive(self.r_fbs, "r_fbs", allow_zero=True)
        for name in ("csi_mbs", "csi_fbs"):
            value = getattr(self, name)
            if value is not None:
                check_positive(value, name, allow_zero=True)


@dataclass(frozen=True)
class SlotProblem:
    """A complete per-slot allocation problem instance.

    Attributes
    ----------
    users:
        The ``K`` user demands.
    expected_channels:
        ``{fbs_id: G_i}`` -- expected available licensed channels per FBS
        for this slot.  In the single-FBS and non-interfering cases every
        FBS sees the full ``G_t``; in the interfering case the greedy
        channel allocation determines each ``G_i``.
    """

    users: Sequence[UserDemand]
    expected_channels: Dict[int, float]

    def __post_init__(self) -> None:
        if not self.users:
            raise ConfigurationError("a SlotProblem needs at least one user")
        ids = [user.user_id for user in self.users]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate user_id values in {ids}")
        for fbs_id, value in self.expected_channels.items():
            if fbs_id < 1:
                raise ConfigurationError(
                    f"expected_channels key must be an FBS id >= 1, got {fbs_id}")
            if value < 0:
                raise ConfigurationError(
                    f"G for FBS {fbs_id} must be non-negative, got {value}")
        missing = {user.fbs_id for user in self.users} - set(self.expected_channels)
        if missing:
            raise ConfigurationError(
                f"expected_channels missing entries for FBS ids {sorted(missing)}")

    @property
    def n_users(self) -> int:
        """Number of CR users ``K``."""
        return len(self.users)

    @property
    def fbs_ids(self) -> List[int]:
        """Sorted FBS ids that have at least one associated user."""
        return sorted({user.fbs_id for user in self.users})

    def users_of_fbs(self, fbs_id: int) -> List[UserDemand]:
        """The user set ``U_i`` of FBS ``fbs_id``."""
        return [user for user in self.users if user.fbs_id == fbs_id]

    def g_for_user(self, user: UserDemand) -> float:
        """``G_i`` of the user's associated FBS."""
        return self.expected_channels[user.fbs_id]

    def with_expected_channels(self, expected_channels: Dict[int, float]) -> "SlotProblem":
        """Copy of this problem with a different channel allocation outcome."""
        return replace(self, expected_channels=dict(expected_channels))


@dataclass
class Allocation:
    """A (candidate) solution of a :class:`SlotProblem`.

    Attributes
    ----------
    mbs_user_ids:
        Users scheduled on the MBS this slot (``p_j = 1``; Theorem 1
        guarantees the optimal ``p`` is binary).
    rho_mbs:
        ``{user_id: rho_{0,j}}`` time shares on the common channel.
    rho_fbs:
        ``{user_id: rho_{i,j}}`` time shares on the user's FBS.
    objective:
        Objective value of problem (17) at this allocation, when known.
    """

    mbs_user_ids: set
    rho_mbs: Dict[int, float]
    rho_fbs: Dict[int, float]
    objective: float = field(default=float("nan"))

    def time_share(self, user: UserDemand) -> float:
        """The share actually used by ``user`` on its chosen base station."""
        if user.user_id in self.mbs_user_ids:
            return self.rho_mbs.get(user.user_id, 0.0)
        return self.rho_fbs.get(user.user_id, 0.0)

    def uses_mbs(self, user_id: int) -> bool:
        """Whether the user is scheduled on the MBS this slot."""
        return user_id in self.mbs_user_ids


def evaluate_objective(problem: SlotProblem, allocation: Allocation) -> float:
    """Objective (expected log-PSNR gain) of problem (17) at ``allocation``.

    Only the branch each user actually selected contributes, matching the
    binary optimal ``p`` of Theorem 1; the time share of the non-selected
    base station is treated as zero.  See the module docstring for why the
    per-user term is ``sP * (log(W + rho * slope) - log W)``.
    """
    total = 0.0
    for user in problem.users:
        if allocation.uses_mbs(user.user_id):
            rho = allocation.rho_mbs.get(user.user_id, 0.0)
            total += user.success_mbs * (
                np.log(user.w_prev + rho * user.r_mbs) - np.log(user.w_prev))
        else:
            rho = allocation.rho_fbs.get(user.user_id, 0.0)
            g_i = problem.g_for_user(user)
            total += user.success_fbs * (
                np.log(user.w_prev + rho * g_i * user.r_fbs) - np.log(user.w_prev))
    return float(total)


def check_feasible(problem: SlotProblem, allocation: Allocation, *,
                   tol: float = FEASIBILITY_TOL) -> None:
    """Raise ``ConfigurationError`` unless ``allocation`` is feasible.

    Checks non-negativity, the common-channel simplex, each FBS's simplex,
    and that no user holds time on the base station it did not select.
    """
    for mapping, label in ((allocation.rho_mbs, "rho_mbs"), (allocation.rho_fbs, "rho_fbs")):
        for user_id, rho in mapping.items():
            if rho < -tol:
                raise ConfigurationError(f"{label}[{user_id}] = {rho} is negative")
    mbs_total = sum(allocation.rho_mbs.get(u.user_id, 0.0)
                    for u in problem.users if allocation.uses_mbs(u.user_id))
    if mbs_total > 1.0 + tol:
        raise ConfigurationError(f"common-channel shares sum to {mbs_total} > 1")
    for fbs_id in problem.fbs_ids:
        fbs_total = sum(allocation.rho_fbs.get(u.user_id, 0.0)
                        for u in problem.users_of_fbs(fbs_id)
                        if not allocation.uses_mbs(u.user_id))
        if fbs_total > 1.0 + tol:
            raise ConfigurationError(
                f"FBS {fbs_id} shares sum to {fbs_total} > 1")
    for user in problem.users:
        if allocation.uses_mbs(user.user_id):
            stray = allocation.rho_fbs.get(user.user_id, 0.0)
        else:
            stray = allocation.rho_mbs.get(user.user_id, 0.0)
        if stray > tol:
            raise ConfigurationError(
                f"user {user.user_id} holds time share {stray} on its "
                f"non-selected base station (Theorem 1 violated)")
