"""Supervised execution: watchdog timeouts, graceful shutdown, backoff.

The plan/executor subsystem already survives two failure classes:
replication *crashes* (a :class:`~repro.utils.errors.ReproError` inside
the engine -- retried once, then recorded as a
:class:`~repro.sim.metrics.FailedRun`) and worker *deaths* (a segfaulted
or OOM-killed process -- quarantined and written off as
``WorkerCrashed``).  This module adds the defense against the third
class: cells that are merely **stuck or slow**, which neither raise nor
die and would otherwise wedge a pool forever.

Three cooperating pieces:

* :class:`SupervisedExecutor` -- a watchdog process pool.  Cells are
  dispatched one at a time over per-worker pipes, so the parent always
  knows exactly which cell every worker is running and since when.  A
  cell that exceeds the per-cell deadline (``--cell-timeout``) gets its
  worker killed and replaced, and is recorded as a ``FailedRun`` with
  ``error_type="CellTimedOut"`` -- the sweep completes, the failure is
  checkpointed, and a resume does not retry it forever.  A whole-sweep
  deadline (``--deadline``) aborts the run with
  :class:`~repro.utils.errors.SweepDeadlineExceeded` instead (in-flight
  cells are *not* recorded as failed; they simply re-run on resume).
* :class:`ShutdownCoordinator` -- a two-stage SIGINT/SIGTERM protocol.
  The first signal only sets a draining flag: executors stop dispatching
  new cells, in-flight cells finish and are checkpointed, telemetry is
  flushed, and the harness raises
  :class:`~repro.utils.errors.SweepInterrupted` (mapped by the CLI to
  :data:`EXIT_INTERRUPTED`).  A second signal runs the registered
  flushers (checkpoint fsync, trace/metrics dump) and hard-exits with
  :data:`EXIT_HARD_ABORT`.
* :func:`backoff_delay` / :func:`apply_backoff` -- deterministic
  exponential backoff with bounded jitter for every retry path (the
  fresh-seed replication retry and the worker-crash redispatch).  The
  jitter is derived from the cell's seed and attempt number alone, so
  two runs of the same sweep back off identically and results stay
  bit-identical at any worker count.

Supervision is telemetry-and-scheduling only: it never touches RNG
streams or results, so a supervised run of a healthy sweep is
byte-identical to a serial one (asserted by
``tests/robustness/test_supervision.py``).
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.exec.executor import CellOutcome, Executor
from repro.exec.plan import Cell, ensure_picklable
from repro.obs.logging import get_logger
from repro.obs.metrics import global_registry, metrics_enabled
from repro.obs.trace import active_tracer
from repro.sim.metrics import FailedRun
from repro.utils.errors import ConfigurationError, SweepDeadlineExceeded

logger = get_logger(__name__)

#: Exit code the CLI returns when ``--fail-on-error`` is set and any
#: replication failed (including timed-out cells).
EXIT_FAILED_RUNS = 3
#: Exit code for a graceful shutdown: first SIGINT/SIGTERM, drained and
#: flushed, resumable from the checkpoint.
EXIT_INTERRUPTED = 4
#: Exit code when the whole-sweep ``--deadline`` expired.
EXIT_DEADLINE = 5
#: Exit code of the hard abort on a second SIGINT/SIGTERM.
EXIT_HARD_ABORT = 6

#: First-retry backoff in seconds; doubles per further attempt.
BACKOFF_BASE = 0.05
#: Upper bound on any single backoff sleep, before jitter.
BACKOFF_CAP = 2.0
#: Entropy tag namespacing backoff jitter away from simulation seeds.
_BACKOFF_TAG = 0xBACC0FF

#: Watchdog wake-up interval: the granularity at which deadlines are
#: checked while waiting for worker results.
DEFAULT_POLL_INTERVAL = 0.05

#: Dispatch attempts before a worker-killing cell is written off
#: (mirrors the quarantine contract of the unsupervised pool).
MAX_DISPATCH_ATTEMPTS = 2


# -- deterministic retry backoff -----------------------------------------


def backoff_delay(seed: Optional[int], run_index: int, attempt: int, *,
                  base: float = BACKOFF_BASE, cap: float = BACKOFF_CAP) -> float:
    """Deterministic exponential backoff with bounded jitter, in seconds.

    Attempt 0 (the first try) never waits.  Attempt ``n >= 1`` waits
    ``min(cap, base * 2**(n-1))`` scaled by a jitter factor in
    ``[0.5, 1.0)`` derived from ``(seed, run_index, attempt)`` alone --
    no wall clock, no process entropy -- so identical sweeps back off
    identically wherever and whenever they run.
    """
    if attempt <= 0:
        return 0.0
    magnitude = min(float(cap), float(base) * (2.0 ** (attempt - 1)))
    entropy = [_BACKOFF_TAG, 0 if seed is None else int(seed),
               int(run_index), int(attempt)]
    jitter = np.random.SeedSequence(entropy).generate_state(1)[0] / 2.0 ** 32
    return magnitude * (0.5 + 0.5 * float(jitter))


def apply_backoff(seed: Optional[int], run_index: int, attempt: int, *,
                  reason: str, sleep: Callable[[float], None] = time.sleep
                  ) -> float:
    """Sleep :func:`backoff_delay` and record the wait in the metrics.

    Returns the seconds slept (0.0 for attempt 0).  ``reason`` labels the
    retry path (``"replication-retry"`` or ``"worker-crash"``) in the
    ``repro_retry_backoffs_total`` counters.
    """
    delay = backoff_delay(seed, run_index, attempt)
    if delay <= 0.0:
        return 0.0
    if metrics_enabled():
        registry = global_registry()
        registry.counter("repro_retry_backoffs_total", reason=reason).inc()
        registry.counter("repro_retry_backoff_seconds_total",
                         reason=reason).inc(delay)
    logger.info("backing off %.3f s before %s retry (run %d, attempt %d)",
                delay, reason, run_index, attempt)
    sleep(delay)
    return delay


# -- graceful shutdown ----------------------------------------------------


class ShutdownCoordinator:
    """Two-stage SIGINT/SIGTERM protocol for long-running sweeps.

    Stage 1 (first signal): flip :attr:`draining`.  Nothing is killed;
    executors notice the flag, stop dispatching, and let in-flight cells
    finish so they reach the checkpoint.  The harness then raises
    :class:`~repro.utils.errors.SweepInterrupted`.

    Stage 2 (second signal): the operator wants out *now*.  Every
    registered flusher runs (checkpoint fsync, trace/metrics dump), then
    the process hard-exits with :data:`EXIT_HARD_ABORT`.

    The coordinator can be driven without real signals via
    :meth:`trigger` (used by tests and by in-process embedding), and
    installs/uninstalls as a context manager.  Installing also registers
    it as the process-wide :func:`active_shutdown`, which is how the
    executors and the sweep loop discover it without threading it
    through every call signature.
    """

    def __init__(self, *, hard_exit: Callable[[int], None] = os._exit) -> None:
        self._stage = 0
        self._flushers: List[Callable[[], None]] = []
        self._previous: Dict[int, object] = {}
        self._hard_exit = hard_exit

    # -- state -----------------------------------------------------------

    @property
    def stage(self) -> int:
        """Signals received so far (0 = none, 1 = draining, 2+ = abort)."""
        return self._stage

    @property
    def draining(self) -> bool:
        """Whether dispatching should stop and in-flight work drain."""
        return self._stage >= 1

    def add_flusher(self, flusher: Callable[[], None]) -> None:
        """Register a durability hook to run on a hard abort."""
        self._flushers.append(flusher)

    def remove_flusher(self, flusher: Callable[[], None]) -> None:
        """Unregister a hook added with :meth:`add_flusher`."""
        try:
            self._flushers.remove(flusher)
        except ValueError:
            pass

    # -- signal plumbing -------------------------------------------------

    def install(self, signals: Sequence[int] = (signal.SIGINT, signal.SIGTERM)
                ) -> "ShutdownCoordinator":
        """Install the handler for ``signals`` and become the process-wide
        active coordinator.  Returns ``self`` for chaining."""
        global _ACTIVE_SHUTDOWN
        for signum in signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        _ACTIVE_SHUTDOWN = self
        return self

    def uninstall(self) -> None:
        """Restore the previous signal handlers and clear the global."""
        global _ACTIVE_SHUTDOWN
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)
        self._previous.clear()
        if _ACTIVE_SHUTDOWN is self:
            _ACTIVE_SHUTDOWN = None

    def __enter__(self) -> "ShutdownCoordinator":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    def _handle(self, signum, frame) -> None:
        self.trigger(signum)

    def trigger(self, signum: int = signal.SIGINT) -> None:
        """Advance one shutdown stage (callable without a real signal)."""
        self._stage += 1
        if self._stage > 1:
            self._abort(signum)
            return
        # Stage 1 runs inside a signal handler: record intent, never
        # raise.  The actual draining happens in the executors' loops.
        try:
            logger.warning(
                "signal %s: draining -- no new cells dispatched; in-flight "
                "cells finish and are checkpointed (signal again to abort)",
                signum)
            if metrics_enabled():
                global_registry().counter(
                    "repro_shutdown_signals_total", stage="drain").inc()
            tracer = active_tracer()
            if tracer is not None:
                tracer.bump("shutdown_signals")
                tracer.event("shutdown-drain", kind="supervision",
                             signal=int(signum))
        except Exception:  # pragma: no cover - handler must never raise
            pass

    def _abort(self, signum) -> None:
        logger.error("signal %s: hard abort -- flushing and exiting %d",
                     signum, EXIT_HARD_ABORT)
        try:
            if metrics_enabled():
                global_registry().counter(
                    "repro_shutdown_signals_total", stage="abort").inc()
        except Exception:  # pragma: no cover
            pass
        try:
            # The tracer buffers lines between replication boundaries;
            # drain it first so the trace reads up to the abort instant
            # even when no obs flusher was registered.
            tracer = active_tracer()
            if tracer is not None:
                tracer.flush()
        except Exception:  # pragma: no cover - the exit must proceed
            pass
        for flusher in list(self._flushers):
            try:
                flusher()
            except Exception:  # a broken flusher must not block the exit
                logger.exception("shutdown flusher %r failed", flusher)
        self._hard_exit(EXIT_HARD_ABORT)


#: The process-wide coordinator installed by ShutdownCoordinator.install().
_ACTIVE_SHUTDOWN: Optional[ShutdownCoordinator] = None


def active_shutdown() -> Optional[ShutdownCoordinator]:
    """The installed coordinator, or ``None`` outside a supervised run."""
    return _ACTIVE_SHUTDOWN


def shutdown_draining() -> bool:
    """Whether a shutdown signal has requested draining (cheap gate)."""
    coordinator = _ACTIVE_SHUTDOWN
    return coordinator is not None and coordinator.draining


# -- the watchdog pool ----------------------------------------------------


def _supervised_worker(conn) -> None:
    """Worker loop: receive one cell, execute it, send the outcome back.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the whole
    foreground process group) cannot kill workers mid-cell -- draining
    in-flight cells is the parent coordinator's contract.  SIGTERM keeps
    its default action: it is how the watchdog kills a hung worker.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Resolved through the module so test-time interception of
    # _execute_cell keeps working under fork, exactly like the
    # unsupervised pool.
    from repro.exec import executor as _executor

    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            conn.close()
            return
        try:
            key, result, seconds = _executor._execute_cell(item)
        except BaseException as exc:
            try:
                conn.send(("error", item.key, exc))
            except Exception:
                conn.send(("error", item.key,
                           RuntimeError(f"worker exception did not pickle: "
                                        f"{exc!r}")))
            continue
        conn.send(("done", key, result, seconds))


class _Worker:
    """Parent-side record of one supervised worker process."""

    __slots__ = ("process", "conn", "cell", "started", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.cell: Optional[Cell] = None
        self.started: Optional[float] = None
        self.deadline: Optional[float] = None


class SupervisedExecutor(Executor):
    """Watchdog process pool: per-cell deadlines, kill + replace, drain.

    Parameters
    ----------
    jobs:
        Worker process count.  Unlike the unsupervised pool, ``jobs=1``
        still runs the cell in a child process -- that is what makes a
        hung cell killable at any worker count.
    cell_timeout:
        Per-cell wall-clock budget in seconds, measured from dispatch.
        A cell that exceeds it has its worker killed and replaced and is
        recorded as a ``FailedRun`` with ``error_type="CellTimedOut"``.
        ``None`` disables the per-cell watchdog.
    deadline:
        Whole-run wall-clock budget in seconds, measured from the start
        of :meth:`run`.  On expiry the pool is torn down and
        :class:`~repro.utils.errors.SweepDeadlineExceeded` raised;
        completed cells were already streamed to the caller (and thus
        checkpointed), in-flight ones re-run on resume.
    poll_interval:
        Watchdog wake-up granularity while waiting for results.
    shutdown:
        Explicit :class:`ShutdownCoordinator`; defaults to the
        process-wide :func:`active_shutdown` at run time.

    Notes
    -----
    Cells are dispatched one at a time over per-worker pipes (no
    chunking): supervision needs exact knowledge of which cell each
    worker holds, and killing a worker must forfeit at most one cell.
    Crash attribution is therefore exact too -- a worker that dies took
    exactly one cell with it, which is redispatched once (with
    deterministic backoff) and then written off as ``WorkerCrashed``.
    Under an active drain the outcome stream may end before every input
    cell was executed; the sweep harness detects the shortfall and
    raises :class:`~repro.utils.errors.SweepInterrupted`.
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 cell_timeout: Optional[float] = None,
                 deadline: Optional[float] = None,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 shutdown: Optional[ShutdownCoordinator] = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ConfigurationError(
                f"cell_timeout must be > 0, got {cell_timeout}")
        if deadline is not None and deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {deadline}")
        if poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be > 0, got {poll_interval}")
        self.jobs = int(jobs)
        self.cell_timeout = None if cell_timeout is None else float(cell_timeout)
        self.deadline = None if deadline is None else float(deadline)
        self.poll_interval = float(poll_interval)
        self._shutdown = shutdown
        self._ctx = get_context()

    # -- worker lifecycle ------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_supervised_worker, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    @staticmethod
    def _reap(worker: _Worker) -> None:
        """Kill one worker process and release its pipe."""
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn child
                worker.process.kill()
                worker.process.join(timeout=2.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _teardown(self, workers: List[_Worker]) -> None:
        for worker in workers:
            if worker.cell is None and worker.process.is_alive():
                try:
                    worker.conn.send(None)  # polite: let idle workers exit
                except OSError:
                    pass
        for worker in workers:
            self._reap(worker)

    # -- the supervision loop --------------------------------------------

    def run(self, cells: Sequence[Cell]) -> Iterator[CellOutcome]:
        cells = list(cells)
        if not cells:
            return
        ensure_picklable(cells)
        pending: Deque[Cell] = deque(cells)
        dispatches: Dict[str, int] = {}
        workers = [self._spawn() for _ in range(min(self.jobs, len(cells)))]
        started = time.monotonic()
        run_deadline = None if self.deadline is None else started + self.deadline
        outstanding = len(cells)
        logger.info(
            "supervising %d cells on %d workers (cell_timeout=%s, deadline=%s)",
            len(cells), len(workers), self.cell_timeout, self.deadline)
        try:
            while outstanding > 0:
                shutdown = self._shutdown or active_shutdown()
                draining = shutdown is not None and shutdown.draining
                now = time.monotonic()
                if run_deadline is not None and now >= run_deadline:
                    in_flight = sorted(w.cell.key for w in workers
                                       if w.cell is not None)
                    if metrics_enabled():
                        global_registry().counter(
                            "repro_supervisor_deadline_aborts_total").inc()
                    tracer = active_tracer()
                    if tracer is not None:
                        tracer.bump("deadline_aborts")
                        tracer.event("sweep-deadline", kind="supervision",
                                     outstanding=outstanding)
                    raise SweepDeadlineExceeded(
                        f"sweep deadline of {self.deadline:g}s expired with "
                        f"{outstanding} cell(s) outstanding (in flight: "
                        f"{', '.join(in_flight) or 'none'}); completed cells "
                        f"are checkpointed, the rest re-run on resume")
                if not draining:
                    self._dispatch_idle(workers, pending, dispatches)
                busy = [w for w in workers if w.cell is not None]
                if not busy:
                    if draining:
                        logger.warning(
                            "drain complete: %d cell(s) left undispatched",
                            outstanding)
                        return
                    if not pending:  # pragma: no cover - accounting guard
                        raise RuntimeError(
                            f"supervisor stalled with {outstanding} cells "
                            f"outstanding and nothing in flight")
                    continue
                for outcome in self._collect(workers, busy, pending, dispatches):
                    outstanding -= 1
                    yield outcome
        finally:
            self._teardown(workers)

    def _dispatch_idle(self, workers: List[_Worker], pending: Deque[Cell],
                       dispatches: Dict[str, int]) -> None:
        """Hand one cell to every idle worker (replacing dead ones)."""
        for index, worker in enumerate(workers):
            if worker.cell is not None or not pending:
                continue
            cell = pending.popleft()
            try:
                worker.conn.send(cell)
            except (OSError, ValueError):
                # The idle worker died (or its pipe broke) between cells;
                # replace it and try the same cell there.
                logger.warning("idle worker died; replacing it")
                self._reap(worker)
                worker = workers[index] = self._spawn()
                worker.conn.send(cell)
            dispatches[cell.key] = dispatches.get(cell.key, 0) + 1
            worker.cell = cell
            worker.started = time.monotonic()
            worker.deadline = (None if self.cell_timeout is None
                               else worker.started + self.cell_timeout)

    def _collect(self, workers: List[_Worker], busy: List[_Worker],
                 pending: Deque[Cell], dispatches: Dict[str, int]
                 ) -> Iterator[CellOutcome]:
        """Wait one poll interval; yield results, crashes, and timeouts."""
        ready = _connection_wait([w.conn for w in busy],
                                 timeout=self.poll_interval)
        by_conn = {w.conn: w for w in busy}
        for conn in ready:
            worker = by_conn[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                outcome = self._handle_crash(workers, worker, pending,
                                             dispatches)
                if outcome is not None:
                    yield outcome
                continue
            if message[0] == "error":
                # Programming errors propagate unchanged, as everywhere
                # else in the execution stack.
                raise message[2]
            _, key, result, seconds = message
            cell = worker.cell
            worker.cell = worker.started = worker.deadline = None
            yield CellOutcome(cell=cell, result=result, seconds=seconds)
        now = time.monotonic()
        for index, worker in enumerate(workers):
            if (worker.cell is not None and worker.deadline is not None
                    and now >= worker.deadline):
                yield self._handle_timeout(workers, index, worker)

    def _handle_crash(self, workers: List[_Worker], worker: _Worker,
                      pending: Deque[Cell], dispatches: Dict[str, int]
                      ) -> Optional[CellOutcome]:
        """A worker died mid-cell: redispatch once with backoff, then
        write the cell off as ``WorkerCrashed``."""
        cell = worker.cell
        self._reap(worker)
        workers[workers.index(worker)] = self._spawn()
        attempts = dispatches.get(cell.key, 1)
        if metrics_enabled():
            global_registry().counter(
                "repro_executor_worker_crashes_total").inc()
            global_registry().counter(
                "repro_supervisor_worker_replacements_total").inc()
        if attempts < MAX_DISPATCH_ATTEMPTS:
            logger.warning(
                "worker died executing cell %s (dispatch %d); backing off "
                "and redispatching", cell.key, attempts)
            apply_backoff(cell.config.seed, cell.run_index, attempts,
                          reason="worker-crash")
            pending.appendleft(cell)
            return None
        logger.error("cell %s killed %d workers; written off as WorkerCrashed",
                     cell.key, attempts)
        return CellOutcome(
            cell=cell,
            result=FailedRun(
                run_index=cell.run_index,
                error_type="WorkerCrashed",
                error=f"worker process died executing cell {cell.key} "
                      f"({attempts} dispatches)",
                attempts=attempts,
            ),
            seconds=0.0)

    def _handle_timeout(self, workers: List[_Worker], index: int,
                        worker: _Worker) -> CellOutcome:
        """Kill a worker whose cell blew its deadline; record the cell."""
        cell = worker.cell
        elapsed = time.monotonic() - worker.started
        logger.error(
            "cell %s exceeded its %.3g s deadline (%.3g s elapsed); killing "
            "and replacing its worker", cell.key, self.cell_timeout, elapsed)
        self._reap(worker)
        workers[index] = self._spawn()
        if metrics_enabled():
            registry = global_registry()
            registry.counter("repro_supervisor_cell_timeouts_total").inc()
            registry.counter(
                "repro_supervisor_worker_replacements_total").inc()
        tracer = active_tracer()
        if tracer is not None:
            tracer.bump("cell_timeouts")
            tracer.event("cell-timeout", kind="supervision", cell=cell.key)
        return CellOutcome(
            cell=cell,
            result=FailedRun(
                run_index=cell.run_index,
                error_type="CellTimedOut",
                error=f"cell {cell.key} exceeded the per-cell deadline of "
                      f"{self.cell_timeout:g}s; its worker was killed and "
                      f"replaced",
                attempts=1,
            ),
            seconds=elapsed)
